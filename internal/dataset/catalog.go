package dataset

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphdiam/internal/graph"
)

// ErrNotFound reports a lookup of an uncataloged dataset name.
var ErrNotFound = errors.New("dataset: not found")

// ErrBudgetExceeded reports an ingest whose snapshot cannot fit the
// catalog's byte budget at all. It is a capacity condition, not a client
// mistake — the server maps it to 507, not 400.
var ErrBudgetExceeded = errors.New("dataset: byte budget exceeded")

// Directory layout under the catalog root:
//
//	manifest.json        name → snapshot mapping (atomic rename + fsync)
//	snapshots/<sha>.gds  content-addressed snapshot files
//	quarantine/          corrupt files set aside by crash recovery
const (
	manifestName  = "manifest.json"
	snapshotsDir  = "snapshots"
	quarantineDir = "quarantine"
	snapExt       = ".gds"
)

// nameRE bounds dataset names to filesystem- and URL-safe tokens.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// Options tunes a Catalog. The zero value is an unbounded, silent catalog.
type Options struct {
	// ByteBudget caps the total bytes of unique snapshot files; ingests
	// that push past it evict the least recently used datasets. 0 means
	// unlimited. A single snapshot larger than the budget is rejected.
	// With a remote backend the budget governs the local cache footprint.
	ByteBudget int64
	// Log receives recovery/quarantine/eviction/sweep notices; nil
	// disables.
	Log *log.Logger
	// Blobs selects the snapshot storage tier. Nil uses the default
	// LocalStore under the catalog directory's snapshots/ subdirectory;
	// a RemoteStore makes this node serve from (and publish to) a shared
	// HTTP blob tier while keeping its manifest local.
	Blobs BlobStore
	// CompactAfter is the delta-chain length past which an append
	// triggers background compaction (fold the chain into a fresh
	// snapshot). 0 means the default (8); negative disables automatic
	// compaction (explicit Compact still works).
	CompactAfter int
	// CompactFraction triggers background compaction when the chain's
	// cumulative record count exceeds this fraction of the base graph's
	// edges, independent of chain length. 0 means the default (0.25).
	CompactFraction float64
	// Metrics receives append/compaction/chain-length telemetry; nil
	// disables.
	Metrics *CatalogMetrics
}

// defaultCompactAfter and defaultCompactFraction are the churn
// thresholds of the background compaction policy.
const (
	defaultCompactAfter    = 8
	defaultCompactFraction = 0.25
)

// DeltaRef is one link of a dataset's delta chain: the content address
// of a GDD1 frame blob plus its shape, enough for O(1) boot validation
// and per-blob budget accounting without opening the frame.
type DeltaRef struct {
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
	Ins    int    `json:"ins"`
	Rem    int    `json:"rem"`
}

// Info describes one cataloged dataset. Two names may share blobs;
// bytes are counted once per unique blob in budget accounting.
//
// SHA256 is the dataset's lineage head: the payload SHA-256 of the
// fully materialized CSR. For a plain snapshot (empty Deltas) that is
// also the address of the stored blob. For a lineage (base + delta
// chain) the head is a *derived* address — no blob exists under it
// until compaction folds the chain — and the stored blobs are
// BaseSHA256 plus every Deltas entry. NumNodes/NumEdges/Bytes describe
// the materialized graph and the total stored bytes respectively.
type Info struct {
	Name       string     `json:"name"`
	SHA256     string     `json:"sha256"`
	Bytes      int64      `json:"bytes"`
	NumNodes   int        `json:"numNodes"`
	NumEdges   int        `json:"numEdges"`
	Format     string     `json:"format"`
	Source     string     `json:"source"`
	CreatedAt  time.Time  `json:"createdAt"`
	LastUsedAt time.Time  `json:"lastUsedAt"`
	BaseSHA256 string     `json:"baseSha256,omitempty"`
	BaseBytes  int64      `json:"baseBytes,omitempty"`
	Deltas     []DeltaRef `json:"deltas,omitempty"`
}

// base returns the address of the dataset's base snapshot blob: the
// head itself when there is no delta chain.
func (in *Info) base() string {
	if in.BaseSHA256 != "" {
		return in.BaseSHA256
	}
	return in.SHA256
}

// ChainLen reports the delta chain length (0 for a plain snapshot).
func (in *Info) ChainLen() int { return len(in.Deltas) }

// blobRef is one stored blob an entry depends on.
type blobRef struct {
	sha   string
	bytes int64
	delta bool
}

// blobRefs enumerates the blobs this entry actually stores: the base
// snapshot and every delta frame. The head address of a non-empty chain
// is deliberately absent — it names derived content, not a blob.
func (in *Info) blobRefs() []blobRef {
	baseBytes := in.Bytes
	if len(in.Deltas) > 0 {
		baseBytes = in.BaseBytes
	}
	refs := make([]blobRef, 0, 1+len(in.Deltas))
	refs = append(refs, blobRef{sha: in.base(), bytes: baseBytes})
	for _, d := range in.Deltas {
		refs = append(refs, blobRef{sha: d.SHA256, bytes: d.Bytes, delta: true})
	}
	return refs
}

// manifest is the on-disk catalog state.
type manifest struct {
	Version int              `json:"version"`
	Entries map[string]*Info `json:"entries"`
}

// Catalog is a persistent, content-addressed collection of graph
// snapshots rooted at one directory. All methods are safe for concurrent
// use. Mutations are crash-safe: snapshot files land under a temporary
// name and are renamed into place before the manifest (itself written via
// fsync'd atomic rename) references them, so a crash at any point leaves
// either the old or the new state plus, at worst, orphan files that the
// next Open garbage-collects.
type Catalog struct {
	dir   string
	opts  Options
	blobs BlobStore

	lock *os.File // exclusive advisory lock held for the catalog's life

	mu         sync.Mutex
	entries    map[string]*Info
	mapped     map[string]*Loaded // open snapshots keyed by SHA; released at Close
	publishing map[string]int     // blob publishes in flight, not yet manifest-referenced
	dirty      bool               // in-memory state (incl. recency) ahead of manifest.json
	now        func() time.Time

	// appendMu serializes head movement (append/compact) so two appends
	// cannot both materialize from the same predecessor and race their
	// manifest commits. Ordered before c.mu; never held across a query.
	appendMu   sync.Mutex
	compacting map[string]bool // names with a background compaction in flight
	compactWG  sync.WaitGroup  // joins background compactions at Close

	sweepMu   sync.Mutex
	sweep     SweepStatus
	sweepStop func() // stops a running background sweeper; nil when none
}

// tmpSeq disambiguates concurrent ingest temp files within one process.
var tmpSeq atomic.Uint64

// Open loads (or initializes) the catalog rooted at dir. Recovery is
// forgiving: entries whose snapshot files are missing, truncated, or fail
// the O(1) header checks are quarantined (the file, when present, moves to
// quarantine/) and dropped rather than failing boot; stray temporary and
// orphan snapshot files are deleted.
//
// A catalog directory belongs to one process at a time: Open takes an
// exclusive advisory lock (where the platform supports one) and fails
// fast when another process — a running daemon, a concurrent cmd/dataset
// — already holds it. Without this, a second process booting from a
// stale manifest view could roll back entries the first just ingested,
// and its orphan collection would then delete their snapshots.
func Open(dir string, opts Options) (*Catalog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	blobs := opts.Blobs
	if blobs == nil {
		var err error
		if blobs, err = NewLocalStore(filepath.Join(dir, snapshotsDir)); err != nil {
			return nil, err
		}
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	c := &Catalog{dir: dir, opts: opts, blobs: blobs, lock: lock,
		entries: map[string]*Info{}, mapped: map[string]*Loaded{},
		publishing: map[string]int{}, compacting: map[string]bool{}, now: time.Now}

	dirty, err := c.recover()
	if err != nil {
		unlockDir(lock)
		return nil, err
	}
	if dirty {
		c.mu.Lock()
		err = c.saveManifestLocked()
		c.mu.Unlock()
		if err != nil {
			unlockDir(lock)
			return nil, err
		}
	}
	return c, nil
}

// logf emits a notice when logging is configured.
func (c *Catalog) logf(format string, args ...any) {
	if c.opts.Log != nil {
		c.opts.Log.Printf("dataset: "+format, args...)
	}
}

// recover loads the manifest and reconciles it with the snapshot
// directory. Returns whether the manifest must be rewritten.
func (c *Catalog) recover() (dirty bool, err error) {
	raw, err := os.ReadFile(filepath.Join(c.dir, manifestName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		// fresh catalog
	case err != nil:
		return false, err
	default:
		var m manifest
		if jerr := json.Unmarshal(raw, &m); jerr != nil || m.Version != 1 {
			// A corrupt manifest should be impossible under the atomic
			// rename protocol, but if one appears, set it aside and boot
			// empty rather than refusing to serve.
			c.quarantine(filepath.Join(c.dir, manifestName))
			c.logf("quarantined unreadable manifest: %v", jerr)
			dirty = true
		} else {
			for name, in := range m.Entries {
				in.Name = name
				c.entries[name] = in
			}
		}
	}

	// Validate every referenced snapshot cheaply (header page only).
	// Backend-unavailable is not corruption: a boot while the shared
	// blob tier is down must not quarantine the whole manifest. Nor is
	// a 404 from a shared tier — the blob may be momentarily gone (hub
	// mid-restore, re-upload pending) and dropping the entry would turn
	// a recoverable tier gap into permanent manifest loss; keep it and
	// let queries 404 until the tier heals.
	_, sharedTier := c.blobs.(nameResolver)
	for name, in := range c.entries {
		badSHA, verr := c.checkEntry(in)
		switch {
		case verr == nil:
		case errors.Is(verr, ErrBackendUnavailable):
			c.logf("skipping boot check of dataset %q (%s): %v", name, ShortSHA(in.SHA256), verr)
		case sharedTier && errors.Is(verr, ErrBlobNotFound):
			c.logf("dataset %q (%s) missing from the shared tier; keeping the entry", name, ShortSHA(in.SHA256))
		default:
			if badSHA != "" {
				c.quarantineBlob(badSHA)
			}
			delete(c.entries, name)
			c.logf("quarantined dataset %q (%s): %v", name, ShortSHA(in.SHA256), verr)
			dirty = true
		}
	}

	// Garbage-collect temporaries and orphans left by crashes between
	// snapshot publication and manifest publication. For a remote
	// backend this prunes the local cache only. Pinned blobs — peer
	// uploads whose manifests live on other nodes — count as referenced
	// even though this manifest has never heard of them.
	referenced := map[string]bool{}
	for _, in := range c.entries {
		for _, br := range in.blobRefs() {
			referenced[br.sha] = true
		}
	}
	if pinner, ok := c.blobs.(blobPinner); ok {
		for _, sha := range pinner.PinnedBlobs() {
			referenced[sha] = true
		}
	}
	shas, err := c.blobs.List()
	if err != nil {
		return false, err
	}
	for _, sha := range shas {
		if referenced[sha] {
			continue
		}
		if c.blobs.Delete(sha) == nil {
			c.logf("removed orphan snapshot blob %s", ShortSHA(sha))
		}
	}
	if tc, ok := c.blobs.(tempCleaner); ok {
		for _, name := range tc.CleanTemps() {
			c.logf("removed stale temporary %s", name)
		}
	}
	// Stale ingest staging files live in the catalog root itself.
	if staged, _ := filepath.Glob(filepath.Join(c.dir, ".ingest-*")); len(staged) > 0 {
		for _, p := range staged {
			os.Remove(p)
			c.logf("removed stale ingest staging file %s", filepath.Base(p))
		}
	}
	return dirty, nil
}

// ShortSHA abbreviates a content address for logs and provenance
// strings, tolerating the malformed manifest values recovery exists to
// survive.
func ShortSHA(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

// checkEntry runs the O(1) load-path validation of one manifest entry
// through the blob backend (header bytes only; no full download). A
// lineage entry has no blob under its head address, so the check walks
// the stored blobs — base snapshot plus every delta frame — instead.
// On failure badSHA names the specific offending blob (the one worth
// quarantining; blobs shared with healthy entries must not be set
// aside for another entry's sin), or "" when no single blob is at
// fault.
func (c *Catalog) checkEntry(in *Info) (badSHA string, err error) {
	if len(in.Deltas) == 0 {
		h, err := c.checkSnapshotBlob(in.SHA256)
		if err != nil {
			return in.SHA256, err
		}
		if h.NumNodes != in.NumNodes || h.NumEdges != in.NumEdges || h.FileBytes != in.Bytes {
			return in.SHA256, fmt.Errorf("header shape disagrees with manifest")
		}
		return "", nil
	}
	if !shaRE.MatchString(in.SHA256) {
		return "", fmt.Errorf("malformed lineage head %q", in.SHA256)
	}
	h, err := c.checkSnapshotBlob(in.base())
	if err != nil {
		return in.base(), fmt.Errorf("base %s: %w", ShortSHA(in.base()), err)
	}
	if h.FileBytes != in.BaseBytes {
		return in.base(), fmt.Errorf("base %s: snapshot is %d bytes, manifest records %d", ShortSHA(in.base()), h.FileBytes, in.BaseBytes)
	}
	for i, ref := range in.Deltas {
		if err := c.checkDeltaBlob(ref); err != nil {
			return ref.SHA256, fmt.Errorf("delta %d (%s): %w", i, ShortSHA(ref.SHA256), err)
		}
	}
	return "", nil
}

// checkSnapshotBlob validates one snapshot blob's header page against
// its content address.
func (c *Catalog) checkSnapshotBlob(sha string) (Header, error) {
	rc, err := c.blobs.Open(sha)
	if err != nil {
		return Header{}, err
	}
	defer rc.Close()
	buf := make([]byte, pageSize)
	if _, err := io.ReadFull(rc, buf); err != nil {
		return Header{}, fmt.Errorf("short header: %w", err)
	}
	size := int64(-1) // unknown (e.g. uncached remote blob): skip the size check
	if bz, ok := c.blobs.(blobSizer); ok {
		if sz, err := bz.BlobSize(sha); err == nil {
			size = sz
		}
	}
	h, _, err := decodeHeader(buf, size)
	if err != nil {
		return Header{}, err
	}
	if h.SHAHex() != sha {
		return Header{}, fmt.Errorf("content address %s does not match manifest %s", ShortSHA(h.SHAHex()), ShortSHA(sha))
	}
	return h, nil
}

// checkDeltaBlob validates one delta frame's header against its chain
// reference (header bytes only; the payload hash is checked on load).
func (c *Catalog) checkDeltaBlob(ref DeltaRef) error {
	rc, err := c.blobs.Open(ref.SHA256)
	if err != nil {
		return err
	}
	defer rc.Close()
	buf := make([]byte, deltaHeaderSize)
	if _, err := io.ReadFull(rc, buf); err != nil {
		return fmt.Errorf("short delta header: %w", err)
	}
	size := int64(-1)
	if bz, ok := c.blobs.(blobSizer); ok {
		if sz, err := bz.BlobSize(ref.SHA256); err == nil {
			size = sz
		}
	}
	h, err := decodeDeltaHeader(buf, size)
	if err != nil {
		return err
	}
	if h.SHAHex() != ref.SHA256 {
		return fmt.Errorf("content address %s does not match chain reference %s", ShortSHA(h.SHAHex()), ShortSHA(ref.SHA256))
	}
	if h.NumIns != ref.Ins || h.NumRem != ref.Rem || h.FileBytes != ref.Bytes {
		return fmt.Errorf("delta frame shape disagrees with chain reference")
	}
	return nil
}

// quarantine moves path into the quarantine directory (best effort).
func (c *Catalog) quarantine(path string) {
	if _, err := os.Stat(path); err != nil {
		return
	}
	qdir := filepath.Join(c.dir, quarantineDir)
	os.MkdirAll(qdir, 0o755)
	dst := filepath.Join(qdir, fmt.Sprintf("%d-%s", c.now().UnixNano(), filepath.Base(path)))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
}

// quarantineBlob sets the local copy of a suspect blob aside (best
// effort). For a remote backend only the cache copy moves — the shared
// tier is never mutated on suspicion.
func (c *Catalog) quarantineBlob(sha string) {
	qdir := filepath.Join(c.dir, quarantineDir)
	os.MkdirAll(qdir, 0o755)
	dst := filepath.Join(qdir, fmt.Sprintf("%d-%s%s", c.now().UnixNano(), sha, snapExt))
	c.blobs.Quarantine(sha, dst)
}

// saveManifestLocked publishes the current entries atomically: write tmp,
// fsync, rename over manifest.json, fsync the directory. Caller holds c.mu.
func (c *Catalog) saveManifestLocked() error {
	c.dirty = false
	m := manifest{Version: 1, Entries: c.entries}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(c.dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, manifestName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(c.dir)
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some platforms (and some filesystems) reject fsync on directories;
	// the rename is still atomic there, just not yet durable, so this is
	// best-effort by design.
	d.Sync()
	return nil
}

// IngestGraph snapshots g into the catalog under name. Identical content
// (same payload SHA-256) already present is deduplicated: the existing
// snapshot file is shared and no bytes are written twice. Returns the
// dataset's Info.
func (c *Catalog) IngestGraph(name string, g *graph.Graph, format, source string) (Info, error) {
	if !nameRE.MatchString(name) {
		return Info{}, &BadInputError{Err: fmt.Errorf("dataset: invalid name %q (want %s)", name, nameRE)}
	}
	// The staging name must be unique per call, not per name: two
	// concurrent ingests of the same name writing one file would
	// interleave into a snapshot whose payload no longer matches its
	// content address. Staging lives in the catalog root (same
	// filesystem as a local blob dir, so publication is a rename).
	tmp := filepath.Join(c.dir,
		fmt.Sprintf(".ingest-%d-%d-%s", os.Getpid(), tmpSeq.Add(1), name))
	h, err := WriteSnapshot(tmp, g)
	if err != nil {
		os.Remove(tmp)
		return Info{}, err
	}
	if c.opts.ByteBudget > 0 && h.FileBytes > c.opts.ByteBudget {
		os.Remove(tmp)
		return Info{}, fmt.Errorf("%w: snapshot of %q needs %d bytes, budget is %d",
			ErrBudgetExceeded, name, h.FileBytes, c.opts.ByteBudget)
	}
	sha := h.SHAHex()

	// Publish the blob before the manifest references it (crash-safe
	// ordering; a crash in between leaves an orphan the next Open GCs).
	// Deliberately outside c.mu — a remote backend uploads here — but
	// the address is marked in-flight so a concurrent Remove/eviction of
	// another name that dedups onto the same sha cannot delete the blob
	// in the window between publication and the manifest insert.
	c.mu.Lock()
	c.publishing[sha]++
	c.mu.Unlock()
	err = putBlobFile(c.blobs, sha, tmp)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.publishing[sha]--
	if c.publishing[sha] <= 0 {
		delete(c.publishing, sha)
	}
	if err != nil {
		os.Remove(tmp)
		return Info{}, err
	}

	nowT := c.now()
	in := &Info{
		Name:       name,
		SHA256:     sha,
		Bytes:      h.FileBytes,
		NumNodes:   h.NumNodes,
		NumEdges:   h.NumEdges,
		Format:     format,
		Source:     source,
		CreatedAt:  nowT,
		LastUsedAt: nowT,
	}
	old := c.entries[name]
	c.entries[name] = in
	if old != nil && old.SHA256 != sha {
		c.removeEntryBlobsLocked(old)
	}
	c.evictLocked(name)
	if err := c.saveManifestLocked(); err != nil {
		return Info{}, err
	}
	return *in, nil
}

// evictLocked unlinks least-recently-used datasets until the unique
// snapshot bytes fit the budget. keep is never evicted. Unlinking is safe
// even while a snapshot is mmap'd: the mapping (and any graph served from
// it) stays valid until the catalog closes. Caller holds c.mu.
func (c *Catalog) evictLocked(keep string) {
	if c.opts.ByteBudget <= 0 {
		return
	}
	for c.totalBytesLocked() > c.opts.ByteBudget {
		victim := ""
		for name, in := range c.entries {
			if name == keep {
				continue
			}
			if victim == "" || in.LastUsedAt.Before(c.entries[victim].LastUsedAt) {
				victim = name
			}
		}
		if victim == "" {
			return
		}
		in := c.entries[victim]
		delete(c.entries, victim)
		c.removeEntryBlobsLocked(in)
		c.logf("evicted dataset %q (%d bytes) for byte budget %d", victim, in.Bytes, c.opts.ByteBudget)
	}
}

// totalBytesLocked sums bytes once per unique stored blob (base
// snapshots and delta frames alike).
func (c *Catalog) totalBytesLocked() int64 {
	seen := map[string]int64{}
	for _, in := range c.entries {
		for _, br := range in.blobRefs() {
			seen[br.sha] = br.bytes
		}
	}
	var total int64
	for _, b := range seen {
		total += b
	}
	return total
}

// removeEntryBlobsLocked drops every blob a just-removed entry stored,
// each only when nothing else references it. Caller holds c.mu and has
// already detached the entry.
func (c *Catalog) removeEntryBlobsLocked(in *Info) {
	for _, br := range in.blobRefs() {
		c.removeBlobIfUnreferencedLocked(br.sha)
	}
}

// removeBlobIfUnreferencedLocked drops a blob's local presence once
// nothing needs it: no manifest entry, no publish in flight (a
// concurrent ingest that deduped onto the address and has not inserted
// its entry yet), and no pin (a peer's upload whose manifest lives
// elsewhere). A remote backend's Delete only drops the cache copy
// either way. Caller holds c.mu.
func (c *Catalog) removeBlobIfUnreferencedLocked(sha string) {
	for _, in := range c.entries {
		for _, br := range in.blobRefs() {
			if br.sha == sha {
				return
			}
		}
	}
	if c.publishing[sha] > 0 {
		return
	}
	if pinner, ok := c.blobs.(blobPinner); ok {
		for _, p := range pinner.PinnedBlobs() {
			if p == sha {
				return
			}
		}
	}
	c.blobs.Delete(sha)
}

// Load opens the named dataset, zero-copy when the platform allows. The
// returned graph stays valid until the catalog is closed (evicting or
// removing the dataset later does not invalidate it).
//
// Loads are shared by content address: repeated loads of the same
// snapshot — including via a different name, or after the dataset was
// removed and re-ingested unchanged — return the same *Loaded, so a
// daemon that churns graphs never accumulates duplicate mappings. Do not
// call Close on a catalog-obtained Loaded; the catalog releases all
// mappings at its own Close.
func (c *Catalog) Load(name string) (*Loaded, error) {
	c.mu.Lock()
	in, ok := c.entries[name]
	if !ok {
		c.mu.Unlock()
		// A name absent from the local manifest may exist on a peer
		// sharing the blob tier: adopt its record and retry.
		if adopted, err := c.adoptRemote(name); err != nil {
			return nil, err
		} else if adopted {
			return c.Load(name)
		}
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	sha := in.SHA256
	lineage := *in // copy: materialization runs outside the lock
	in.LastUsedAt = c.now()
	c.dirty = true
	// Recency is persisted opportunistically on the next mutation or at
	// Close; an fsync per read would tax the load path for nothing.
	if ld, ok := c.mapped[sha]; ok {
		c.mu.Unlock()
		return ld, nil
	}
	c.mu.Unlock()

	// Materialize outside the lock: a remote backend downloads here. A
	// lineage entry has no head blob — it loads the base snapshot and
	// replays the delta chain instead.
	var ld *Loaded
	var err error
	if len(lineage.Deltas) > 0 {
		ld, err = c.materializeLineage(&lineage)
	} else {
		var path string
		path, err = c.blobs.Fetch(sha)
		if err == nil {
			ld, err = LoadSnapshot(path)
		}
	}
	if errors.Is(err, ErrBlobNotFound) || errors.Is(err, os.ErrNotExist) {
		// The blob vanished between the lookup and the open: a concurrent
		// re-ingest or eviction unlinked that SHA. The name may well still
		// exist (pointing at a new snapshot) — retry the whole lookup
		// rather than surfacing a spurious not-exist for a live dataset.
		c.mu.Lock()
		cur, ok := c.entries[name]
		retry := ok && cur.SHA256 != sha
		c.mu.Unlock()
		if retry {
			return c.Load(name)
		}
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prior, ok := c.mapped[sha]; ok {
		// A concurrent load won the race; keep one mapping and drop ours.
		ld.Close()
		return prior, nil
	}
	c.mapped[sha] = ld
	return ld, nil
}

// adoptRemote pulls a peer's record for name into the local manifest
// when the blob backend can resolve names (a RemoteStore pointed at a
// daemon). Reports whether an entry was adopted. An unreachable backend
// degrades to plain not-found — a fleet member must keep answering 404s,
// not 502s, for genuinely unknown names while the tier is down.
func (c *Catalog) adoptRemote(name string) (bool, error) {
	nr, ok := c.blobs.(nameResolver)
	if !ok {
		return false, nil
	}
	in, err := nr.LookupName(name)
	switch {
	case errors.Is(err, ErrNotFound):
		return false, nil
	case errors.Is(err, ErrBackendUnavailable):
		c.logf("remote lookup of %q failed: %v", name, err)
		return false, nil
	case err != nil:
		return false, err
	}
	if !nameRE.MatchString(in.Name) {
		return false, fmt.Errorf("dataset: remote record for %q has invalid name", name)
	}
	// The single-snapshot budget rule applies to adoptions exactly as it
	// does to local ingests: the budget governs the cache footprint, and
	// adopting a record whose blob cannot fit would evict everything and
	// still blow the cap on the subsequent fetch.
	if c.opts.ByteBudget > 0 && in.Bytes > c.opts.ByteBudget {
		return false, fmt.Errorf("%w: remote dataset %q needs %d bytes, budget is %d",
			ErrBudgetExceeded, name, in.Bytes, c.opts.ByteBudget)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[name]; exists {
		return true, nil // raced with a local ingest or another adopter
	}
	cp := in
	cp.LastUsedAt = c.now()
	c.entries[name] = &cp
	c.dirty = true
	c.evictLocked(name)
	c.logf("adopted dataset %q (%s) from remote backend", name, ShortSHA(cp.SHA256))
	return true, nil
}

// Info returns the named dataset's catalog record. It is strictly local
// — a fleet member's own manifest; use Resolve to also consult a remote
// backend.
func (c *Catalog) Info(name string) (Info, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.entries[name]
	if !ok {
		return Info{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return *in, nil
}

// Resolve returns the record for name, adopting it from the remote
// backend when the local manifest does not know it — the lookup the
// store's job layer uses so a job naming a peer-ingested dataset is
// submittable on any fleet member. Purely local for local backends.
func (c *Catalog) Resolve(name string) (Info, error) {
	if in, err := c.Info(name); err == nil {
		return in, nil
	}
	adopted, err := c.adoptRemote(name)
	if err != nil {
		return Info{}, err
	}
	if !adopted {
		return Info{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return c.Info(name)
}

// List returns all datasets sorted by name.
func (c *Catalog) List() []Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Info, 0, len(c.entries))
	for _, in := range c.entries {
		out = append(out, *in)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TotalBytes reports the unique snapshot bytes currently cataloged.
func (c *Catalog) TotalBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalBytesLocked()
}

// Remove drops name from the catalog and unlinks its snapshot when no
// other name shares it. Graphs already loaded from it remain valid.
func (c *Catalog) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(c.entries, name)
	c.removeEntryBlobsLocked(in)
	return c.saveManifestLocked()
}

// Verify deep-checks the named dataset's snapshot: payload hash, CSR
// invariants, and cached statistics. Names resolve through the backend
// (Resolve), so `dataset -remote URL verify usa` audits a peer-ingested
// dataset end to end: the record adopts, the blob materializes through
// the admission check, and the deep verification runs on real bytes.
func (c *Catalog) Verify(name string) (Info, error) {
	cp, err := c.Resolve(name)
	if err != nil {
		return Info{}, err
	}
	if len(cp.Deltas) == 0 {
		path, err := c.blobs.Fetch(cp.SHA256)
		if err != nil {
			return Info{}, err
		}
		if _, err := VerifySnapshot(path); err != nil {
			return Info{}, err
		}
		return cp, nil
	}
	// A lineage verifies end to end: the base snapshot deep-checks like
	// any other, every delta frame re-hashes to its chain address, and
	// the replayed materialization must land exactly on the recorded
	// head — the lineage-wide integrity statement.
	path, err := c.blobs.Fetch(cp.base())
	if err != nil {
		return Info{}, err
	}
	if _, err := VerifySnapshot(path); err != nil {
		return Info{}, err
	}
	for i, ref := range cp.Deltas {
		dpath, err := c.blobs.Fetch(ref.SHA256)
		if err != nil {
			return Info{}, err
		}
		h, err := verifyDeltaFile(dpath)
		if err != nil {
			return Info{}, err
		}
		if h.SHAHex() != ref.SHA256 {
			return Info{}, fmt.Errorf("dataset: delta %d of %q hashes to %s, chain records %s",
				i, name, ShortSHA(h.SHAHex()), ShortSHA(ref.SHA256))
		}
	}
	ld, err := c.materializeLineage(&cp)
	if err != nil {
		return Info{}, err
	}
	defer ld.Close()
	if err := ld.Graph.ValidateCSR(); err != nil {
		return Info{}, fmt.Errorf("dataset: materialized lineage of %q: %w", name, err)
	}
	return cp, nil
}

// Dir returns the catalog's root directory.
func (c *Catalog) Dir() string { return c.dir }

// Blobs returns the catalog's snapshot storage tier (what BlobServer
// exposes over HTTP).
func (c *Catalog) Blobs() BlobStore { return c.blobs }

// ReferencesBlob reports whether this catalog still needs sha: a
// manifest entry stores it — as its snapshot, as a lineage base, or as
// a link of its delta chain — or a publish is in flight. It is the
// referential guard the served blob tier's DELETE consults, and what
// turns "DELETE a referenced base out from under its lineage" into a
// 409 instead of data loss.
func (c *Catalog) ReferencesBlob(sha string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.publishing[sha] > 0 {
		return true
	}
	for _, in := range c.entries {
		for _, br := range in.blobRefs() {
			if br.sha == sha {
				return true
			}
		}
	}
	return false
}

// ParseByteSize parses a byte count with an optional K/M/G/T suffix
// (powers of 1024), the grammar of the -dataset-budget flags. Empty means
// 0 (unlimited).
func ParseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult = 1 << 10
	case 'm', 'M':
		mult = 1 << 20
	case 'g', 'G':
		mult = 1 << 30
	case 't', 'T':
		mult = 1 << 40
	}
	if mult != 1 {
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("dataset: want a non-negative byte count like 512M or 8G, got %q", s)
	}
	return v * mult, nil
}

// Close stops any background sweeper, flushes pending recency updates
// (only when something actually changed — a read-only session must not
// rewrite the manifest), releases every mapping handed out by Load, and
// drops the catalog's directory lock. Graphs served from the mappings
// must no longer be in use.
func (c *Catalog) Close() error {
	// Stop the sweeper before taking c.mu: a sweep in flight holds the
	// lock briefly while it drops entries, so joining it under the lock
	// would deadlock.
	c.sweepMu.Lock()
	stop := c.sweepStop
	c.sweepStop = nil
	c.sweepMu.Unlock()
	if stop != nil {
		stop()
	}
	// Join background compactions before tearing mappings down: they
	// hold Loaded graphs and write manifests.
	c.compactWG.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	if c.dirty {
		err = c.saveManifestLocked()
	}
	for _, ld := range c.mapped {
		if cerr := ld.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	c.mapped = map[string]*Loaded{}
	unlockDir(c.lock)
	c.lock = nil
	return err
}

// names returns entry names (diagnostics/tests).
func (c *Catalog) names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.entries))
	for n := range c.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
