package dataset

import (
	"bytes"
	"compress/gzip"
	"errors"
	"strings"
	"testing"

	"graphdiam/internal/gio"
)

// gzBytes gzips b.
func gzBytes(t *testing.T, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDecodeStreamVerifiesGzipTrailer pins the trailer bugfix: the
// binary decoder reads exactly its declared byte count and stops, so
// before the drain-and-close check a gzip member whose CRC-32 trailer
// was corrupted ingested silently. It must now fail, and the same bytes
// with an honest trailer must still decode.
func TestDecodeStreamVerifiesGzipTrailer(t *testing.T) {
	g := mustGen(t, "mesh:8", 1)
	var bin bytes.Buffer
	if err := gio.WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	gz := gzBytes(t, bin.Bytes())

	// Control: the honest stream decodes.
	if _, format, err := DecodeStream(bytes.NewReader(gz), FormatAuto); err != nil || format != FormatBinary {
		t.Fatalf("honest gzip binary: format=%q err=%v", format, err)
	}

	// Flip a bit in the stored CRC-32 (bytes len-8..len-5 of a gzip
	// member). The compressed payload is untouched, so the decode
	// itself succeeds — only the trailer check can catch this.
	bad := append([]byte(nil), gz...)
	bad[len(bad)-8] ^= 0x01
	if _, _, err := DecodeStream(bytes.NewReader(bad), FormatAuto); err == nil {
		t.Fatal("corrupted gzip CRC ingested silently")
	} else {
		var bi *BadInputError
		if !errors.As(err, &bi) {
			t.Fatalf("trailer corruption not classified as bad input: %v", err)
		}
	}

	// A stream cut before its trailer must fail too, explicit format or
	// not.
	cut := gz[:len(gz)-6]
	if _, _, err := DecodeStream(bytes.NewReader(cut), FormatBinary); err == nil {
		t.Fatal("truncated gzip stream ingested silently")
	}

	// End-to-end: the catalog refuses the corrupt upload and stays empty.
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Ingest("bad", bytes.NewReader(bad), FormatAuto, ""); err == nil {
		t.Fatal("catalog ingested a gzip stream with a corrupt trailer")
	}
	if got := c.names(); len(got) != 0 {
		t.Fatalf("catalog entries after refused ingest: %v", got)
	}
}

// TestClassifyFormatTruncatedHead pins the sniffing bugfix: a 512-byte
// peek can cut the first line mid-token, and the cut fragment must never
// decide the format.
func TestClassifyFormatTruncatedHead(t *testing.T) {
	// A head that is one giant token cut mid-way: the old classifier
	// fell through to edgelist on the partial fragment and the parse
	// failed with a baffling error. Now: no complete line → explicit-
	// format error.
	if got, err := ClassifyFormat([]byte(strings.Repeat("c", sniffLen)), true); err == nil {
		t.Fatalf("mid-token head classified as %q, want explicit-format error", got)
	} else if !strings.Contains(err.Error(), "explicit format") {
		t.Fatalf("unhelpful error %v", err)
	}

	// A complete first line still decides even when the tail is cut.
	head := "% metis comment\n3 2 001\n1 2" // cut mid second data line
	if got, err := ClassifyFormat([]byte(head), true); err != nil || got != FormatMETIS {
		t.Fatalf("ClassifyFormat = %q, %v; want metis from the complete first line", got, err)
	}

	// The cut fragment itself must be ignored: these bytes end with what
	// looks like the start of a DIMACS problem line, but it is partial.
	head = "# edge list\n0 1 1\np s" // "p s…" is a cut row, not a header
	if got, err := ClassifyFormat([]byte(head), true); err != nil || got != FormatEdgeList {
		t.Fatalf("ClassifyFormat = %q, %v; want edgelist (partial tail dropped)", got, err)
	}

	// Untruncated input keeps its permissive legacy behavior.
	if got, err := ClassifyFormat(nil, false); err != nil || got != FormatEdgeList {
		t.Fatalf("empty untruncated head = %q, %v", got, err)
	}

	// End-to-end through DecodeStream on a VALID DIMACS file whose first
	// comment line overruns the sniff window: auto-sniff must error
	// cleanly (the cut "c xxxx…" fragment no longer decides), and the
	// explicit format still works on the same bytes.
	longFirst := "c " + strings.Repeat("x", sniffLen+40) + "\np sp 3 2\na 1 2 1\n"
	if _, _, err := DecodeStream(strings.NewReader(longFirst), FormatAuto); err == nil {
		t.Fatal("unsniffable stream auto-ingested")
	}
	if _, format, err := DecodeStream(strings.NewReader(longFirst), FormatDIMACS); err != nil || format != FormatDIMACS {
		t.Fatalf("explicit dimacs on the same stream: format=%q err=%v", format, err)
	}

	// And gzip-wrapped: the decompressed prefix is subject to the same
	// truncation rules.
	if _, _, err := DecodeStream(bytes.NewReader(gzBytes(t, []byte(longFirst))), FormatAuto); err == nil {
		t.Fatal("unsniffable gzipped stream auto-ingested")
	}
	if _, format, err := DecodeStream(bytes.NewReader(gzBytes(t, []byte(longFirst))), FormatDIMACS); err != nil || format != FormatDIMACS {
		t.Fatalf("explicit dimacs on gzipped stream: format=%q err=%v", format, err)
	}
}

// TestIngestErrorClassification pins which failures are the client's
// fault (BadInputError) and which are the server's.
func TestIngestErrorClassification(t *testing.T) {
	c, err := Open(t.TempDir(), Options{ByteBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var bi *BadInputError
	if _, err := c.Ingest("../evil", strings.NewReader("0 1 1\n"), FormatAuto, ""); !errors.As(err, &bi) {
		t.Fatalf("bad name: %v, want BadInputError", err)
	}
	if _, err := c.Ingest("x", strings.NewReader("0 1 1\n"), "yaml", ""); !errors.As(err, &bi) {
		t.Fatalf("unknown format: %v, want BadInputError", err)
	}
	if _, err := c.Ingest("x", strings.NewReader("not a graph at all ???\n"), FormatAuto, ""); !errors.As(err, &bi) {
		t.Fatalf("garbage body: %v, want BadInputError", err)
	}
	// Budget exhaustion is a capacity condition, NOT bad input.
	_, err = c.Ingest("x", strings.NewReader("0 1 1\n"), FormatAuto, "")
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("budget rejection: %v, want ErrBudgetExceeded", err)
	}
	if errors.As(err, &bi) {
		t.Fatal("budget rejection misclassified as the client's fault")
	}
}
