package dataset

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// flipPayloadByte flips one byte inside a snapshot file's payload region
// in place (no truncation — the file may be mmap'd by a live daemon,
// exactly the situation the sweeper runs in).
func flipPayloadByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		// O_WRONLY can't read; reopen for the read.
		rf, rerr := os.Open(path)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if _, rerr := rf.ReadAt(b, off); rerr != nil {
			rf.Close()
			t.Fatal(rerr)
		}
		rf.Close()
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

func TestSweepQuarantinesFlippedPayloadByte(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.IngestGraph("healthy", mustGen(t, "mesh:10", 1), FormatBinary, ""); err != nil {
		t.Fatal(err)
	}
	inBad, err := c.IngestGraph("doomed", mustGen(t, "mesh:10", 2), FormatBinary, "")
	if err != nil {
		t.Fatal(err)
	}

	// A clean sweep first: everything verifies, nothing moves.
	results := c.SweepOnce()
	if len(results) != 2 {
		t.Fatalf("clean sweep checked %d datasets, want 2", len(results))
	}
	for _, r := range results {
		if !r.OK {
			t.Fatalf("clean sweep flagged %q: %s", r.Name, r.Error)
		}
	}

	// Flip one byte inside the payload (past the header page). The boot
	// check would NOT catch this — it is O(header) only — which is the
	// whole reason the deep sweeper exists.
	path := filepath.Join(dir, snapshotsDir, inBad.SHA256+snapExt)
	flipPayloadByte(t, path, pageSize+24)
	if _, err := c.checkEntry(&inBad); err != nil {
		t.Fatalf("premise broken: boot-time header check already detects the payload flip: %v", err)
	}

	results = c.SweepOnce()
	var failed *SweepResult
	for i := range results {
		if !results[i].OK && !results[i].Skipped {
			failed = &results[i]
		}
	}
	if failed == nil || failed.Name != "doomed" {
		t.Fatalf("sweep results %+v: want exactly doomed to fail", results)
	}
	if _, err := c.Info("doomed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt dataset still cataloged after sweep: %v", err)
	}
	if _, err := c.Load("healthy"); err != nil {
		t.Fatalf("healthy sibling lost: %v", err)
	}
	qdes, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(qdes) != 1 {
		t.Fatalf("quarantine dir: err=%v files=%d, want exactly 1", err, len(qdes))
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt blob still present in the store")
	}

	st := c.SweepStatus()
	if st.Sweeps != 2 || st.TotalFailures != 1 || st.TotalQuarantined != 1 || st.LastFailures != 1 {
		t.Fatalf("sweep status %+v", st)
	}

	// The next sweep must be clean and stable (no double quarantine).
	for _, r := range c.SweepOnce() {
		if !r.OK {
			t.Fatalf("post-quarantine sweep flagged %q: %s", r.Name, r.Error)
		}
	}
	if st := c.SweepStatus(); st.TotalQuarantined != 1 {
		t.Fatalf("quarantine count drifted: %+v", st)
	}
}

// TestSweepSharedSnapshotDropsAllAliases: two names over one blob — a
// corrupt payload condemns both records but hashes the bytes only once.
func TestSweepSharedSnapshotDropsAllAliases(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g := mustGen(t, "mesh:9", 7)
	in, err := c.IngestGraph("one", g, FormatBinary, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestGraph("two", g, FormatBinary, ""); err != nil {
		t.Fatal(err)
	}
	flipPayloadByte(t, filepath.Join(dir, snapshotsDir, in.SHA256+snapExt), pageSize+40)

	results := c.SweepOnce()
	failures := 0
	for _, r := range results {
		if !r.OK {
			failures++
		}
	}
	if failures != 2 {
		t.Fatalf("%d failures for 2 aliases of one corrupt blob, want 2", failures)
	}
	if got := c.names(); len(got) != 0 {
		t.Fatalf("aliases survived the sweep: %v", got)
	}
}

func TestBackgroundSweeperDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	in, err := c.IngestGraph("watched", mustGen(t, "mesh:8", 3), FormatBinary, "")
	if err != nil {
		t.Fatal(err)
	}
	flipPayloadByte(t, filepath.Join(dir, snapshotsDir, in.SHA256+snapExt), pageSize+8)

	stop := c.StartSweeper(5 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := c.SweepStatus(); st.TotalQuarantined >= 1 {
			if !st.Enabled {
				t.Fatal("status says sweeper disabled while running")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background sweeper never quarantined; status %+v", c.SweepStatus())
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	if st := c.SweepStatus(); st.Enabled {
		t.Fatal("sweeper still reports enabled after stop")
	}
	// The catalog keeps working after a mid-flight quarantine.
	if _, err := c.IngestGraph("fresh", mustGen(t, "mesh:8", 4), FormatBinary, ""); err != nil {
		t.Fatalf("ingest after sweep: %v", err)
	}
}
