package dataset

import (
	"bufio"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"graphdiam/internal/gen"
	"graphdiam/internal/gio"
	"graphdiam/internal/graph"
)

// benchCorpus lazily builds a ≥1M-edge graph once and materializes both
// its edge-list source file and its .gds snapshot, so the two load paths
// race from identical on-disk inputs.
var benchCorpus struct {
	once     sync.Once
	err      error
	g        *graph.Graph
	elPath   string // edge-list text, the re-parse baseline
	snapPath string // CSR snapshot, the mmap path
}

func benchSetup(tb testing.TB) {
	benchCorpus.once.Do(func() {
		dir, err := os.MkdirTemp("", "gds-bench")
		if err != nil {
			benchCorpus.err = err
			return
		}
		// G(n, m) with 2^20 edge samples: ~1.04M distinct edges, the
		// ISSUE's "≥1M-edge" bar, while staying quick to generate.
		g, err := gen.FromSpec("gnm:300000:1048576", 11)
		if err != nil {
			benchCorpus.err = err
			return
		}
		benchCorpus.g = g

		benchCorpus.elPath = filepath.Join(dir, "g.el")
		f, err := os.Create(benchCorpus.elPath)
		if err != nil {
			benchCorpus.err = err
			return
		}
		bw := bufio.NewWriterSize(f, 1<<20)
		if err := gio.WriteEdgeList(bw, g); err != nil {
			benchCorpus.err = err
			return
		}
		if err := bw.Flush(); err != nil {
			benchCorpus.err = err
			return
		}
		if err := f.Close(); err != nil {
			benchCorpus.err = err
			return
		}

		benchCorpus.snapPath = filepath.Join(dir, "g"+snapExt)
		if _, err := WriteSnapshot(benchCorpus.snapPath, g); err != nil {
			benchCorpus.err = err
		}
	})
	if benchCorpus.err != nil {
		tb.Fatal(benchCorpus.err)
	}
}

// BenchmarkLoadSnapshotMmap measures the catalog's restart path: open,
// validate, mmap, structural sweep, wrap. Compare with
// BenchmarkParseEdgeList — the ratio is the restart-cost win the dataset
// subsystem exists for (the acceptance bar is ≥10×; in practice ~700×,
// the only per-edge cost being the branch-free corruption sweep).
func BenchmarkLoadSnapshotMmap(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ld, err := LoadSnapshot(benchCorpus.snapPath)
		if err != nil {
			b.Fatal(err)
		}
		if ld.Graph.NumEdges() != benchCorpus.g.NumEdges() {
			b.Fatal("wrong graph")
		}
		ld.Close()
	}
}

// BenchmarkLoadSnapshotFallback is the portable io.ReadFull path: still
// no parsing, but it does copy the arrays into the heap.
func BenchmarkLoadSnapshotFallback(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ld, err := loadSnapshot(benchCorpus.snapPath, true)
		if err != nil {
			b.Fatal(err)
		}
		if ld.Graph.NumEdges() != benchCorpus.g.NumEdges() {
			b.Fatal("wrong graph")
		}
		ld.Close()
	}
}

// BenchmarkParseEdgeList is the pre-dataset baseline: re-parse the
// edge-list source and rebuild the CSR on every boot.
func BenchmarkParseEdgeList(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Open(benchCorpus.elPath)
		if err != nil {
			b.Fatal(err)
		}
		g, err := gio.ReadEdgeList(f)
		f.Close()
		if err != nil {
			b.Fatal(err)
		}
		if g.NumEdges() != benchCorpus.g.NumEdges() {
			b.Fatal("wrong graph")
		}
	}
}

// TestSnapshotLoadAtLeastTenTimesFasterThanParse pins the acceptance
// criterion as a test (single measured run of each path, generous slack
// against noisy CI hardware: the real ratio is ~1000×).
func TestSnapshotLoadAtLeastTenTimesFasterThanParse(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation is not -short friendly")
	}
	benchSetup(t)
	parse := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, _ := os.Open(benchCorpus.elPath)
			if _, err := gio.ReadEdgeList(f); err != nil {
				b.Fatal(err)
			}
			f.Close()
		}
	})
	load := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ld, err := LoadSnapshot(benchCorpus.snapPath)
			if err != nil {
				b.Fatal(err)
			}
			ld.Close()
		}
	})
	parseNs := float64(parse.NsPerOp())
	loadNs := float64(load.NsPerOp())
	t.Logf("parse %.1fms vs snapshot load %.3fms (%.0f×)",
		parseNs/1e6, loadNs/1e6, parseNs/loadNs)
	if loadNs*10 > parseNs {
		t.Fatalf("snapshot load (%.2fms) is not ≥10× faster than re-parse (%.2fms)",
			loadNs/1e6, parseNs/1e6)
	}
}
