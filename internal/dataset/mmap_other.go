//go:build !unix

package dataset

import (
	"errors"
	"os"
)

// mmapSupported reports whether this platform has a zero-copy load path.
// Without it every load takes the portable io.ReadFull fallback behind the
// same API.
const mmapSupported = false

func mmapFile(_ *os.File, _ int64) ([]byte, error) {
	return nil, errors.New("dataset: mmap unsupported on this platform")
}

func munmapFile(_ []byte) error { return nil }

// lockDir has no flock here; single-process catalog use is assumed.
func lockDir(_ string) (*os.File, error) { return nil, nil }

func unlockDir(_ *os.File) {}
