package dataset

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
)

// ErrBlobNotFound reports a content address absent from a blob store.
var ErrBlobNotFound = errors.New("dataset: blob not found")

// ErrBackendUnavailable reports a blob backend that could not be reached
// at all (network failure, refused connection, 5xx from the remote tier).
// It is deliberately distinct from ErrBlobNotFound: recovery and the
// integrity sweeper must not quarantine entries just because the shared
// tier had a bad minute.
var ErrBackendUnavailable = errors.New("dataset: blob backend unavailable")

// shaRE matches a lowercase hex SHA-256 — the only token a BlobStore
// accepts as a name, which also makes path traversal through a blob key
// impossible.
var shaRE = regexp.MustCompile(`^[0-9a-f]{64}$`)

// BlobStore is the storage tier under the catalog: an immutable,
// content-addressed set of snapshot blobs keyed by payload SHA-256. The
// catalog's manifest (name → sha) stays per-node; the blob tier is what a
// fleet can share. Implementations must be safe for concurrent use.
//
// Because snapshots are loaded by mmap, a store must be able to
// materialize a blob as a local file (Fetch); for LocalStore that is the
// blob itself, for RemoteStore a read-through cache copy.
type BlobStore interface {
	// Put stores the blob under sha. Writing an address that already
	// exists is a no-op (content addressing: the bytes are identical by
	// construction), and r may be left unconsumed in that case.
	Put(sha string, r io.Reader) error
	// Open streams the blob. Missing blobs return ErrBlobNotFound.
	Open(sha string) (io.ReadCloser, error)
	// Fetch materializes the blob as a local mmap-able file and returns
	// its path. The file must remain valid until Delete/Quarantine.
	Fetch(sha string) (string, error)
	// Delete drops the blob from local storage. Remote stores drop only
	// their cache copy — one node must never unlink a shared tier's blob
	// out from under its peers.
	Delete(sha string) error
	// List enumerates the content addresses materialized locally (the
	// set recovery garbage-collects against).
	List() ([]string, error)
	// Quarantine moves the local copy of sha to dest (best effort,
	// nil when there is no local copy), making Fetch miss until the blob
	// is re-put or re-fetched.
	Quarantine(sha, dest string) error
}

// blobFilePutter is the zero-copy fast path for stores that can adopt an
// already-written local file (rename instead of stream). The source path
// is consumed on success.
type blobFilePutter interface {
	PutFile(sha, path string) error
}

// blobSizer reports a locally-known blob size, -1 when unknown (e.g. a
// remote blob that is not cached). Used by recovery's truncation check.
type blobSizer interface {
	BlobSize(sha string) (int64, error)
}

// tempCleaner removes stale temporary files left behind by a crash.
type tempCleaner interface {
	CleanTemps() []string
}

// blobPinner protects blobs that arrived from outside the local manifest
// — peer uploads through BlobServer — from the catalog's orphan GC and
// unreferenced-blob deletion. A hub's own manifest never references a
// blob a peer ingested, so without pins a hub restart (or a hub-side
// dataset removal that deduped onto the same address) would destroy the
// fleet's only copy. An explicit Delete unpins: that is the operator
// acting on the tier itself.
type blobPinner interface {
	PinBlob(sha string) error
	UnpinBlob(sha string)
	PinnedBlobs() []string
}

// blobTempDirer points spooling (blob-server uploads) at a directory on
// the same filesystem as the store, so adoption is a rename instead of a
// second full copy through os.TempDir.
type blobTempDirer interface {
	BlobTempDir() string
}

// putBlobFile stores the snapshot file at path under sha, preferring the
// rename fast path and falling back to a streaming copy. path is consumed
// either way on success.
func putBlobFile(bs BlobStore, sha, path string) error {
	if fp, ok := bs.(blobFilePutter); ok {
		return fp.PutFile(sha, path)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if err := bs.Put(sha, f); err != nil {
		f.Close()
		return err
	}
	f.Close()
	return os.Remove(path)
}

func checkSHA(sha string) error {
	if !shaRE.MatchString(sha) {
		return fmt.Errorf("dataset: malformed content address %q", sha)
	}
	return nil
}

// LocalStore is the original backend: one directory of page-aligned
// `<sha>.gds` files, mmap-capable, written crash-safely (temp + fsync +
// rename + directory fsync). It is the default under a catalog's
// `snapshots/` directory and doubles as the server side of a shared blob
// tier when exposed through BlobServer.
type LocalStore struct {
	dir string

	pinMu sync.Mutex // guards the pin file
}

// pinsName is the pin registry inside a LocalStore directory: one sha
// per line for every blob adopted from a peer (see blobPinner). The
// leading dot keeps it out of List and CleanTemps.
const pinsName = ".pins"

// NewLocalStore opens (creating if needed) a local blob directory.
func NewLocalStore(dir string) (*LocalStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &LocalStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *LocalStore) Dir() string { return s.dir }

func (s *LocalStore) path(sha string) string {
	return filepath.Join(s.dir, sha+snapExt)
}

// Put streams r into the store under sha via the crash-safe temp+rename
// protocol. An existing address is left untouched.
func (s *LocalStore) Put(sha string, r io.Reader) error {
	if err := checkSHA(sha); err != nil {
		return err
	}
	final := s.path(sha)
	if _, err := os.Stat(final); err == nil {
		return nil // dedup: identical content already present
	}
	tmp := filepath.Join(s.dir, fmt.Sprintf(".tmp-%d-%d-put", os.Getpid(), tmpSeq.Add(1)))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, r); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(s.dir)
}

// PutFile adopts an already-written snapshot file by rename (same
// filesystem) or by streaming copy (cross-device), consuming path.
func (s *LocalStore) PutFile(sha, path string) error {
	if err := checkSHA(sha); err != nil {
		return err
	}
	final := s.path(sha)
	if _, err := os.Stat(final); err == nil {
		return os.Remove(path) // dedup
	}
	if err := os.Rename(path, final); err == nil {
		return syncDir(s.dir)
	}
	// Cross-device (or otherwise un-renameable) source: stream it in.
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	perr := s.Put(sha, f)
	f.Close()
	if perr != nil {
		return perr
	}
	return os.Remove(path)
}

// Open streams the blob.
func (s *LocalStore) Open(sha string) (io.ReadCloser, error) {
	if err := checkSHA(sha); err != nil {
		return nil, err
	}
	f, err := os.Open(s.path(sha))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrBlobNotFound, ShortSHA(sha))
	}
	return f, err
}

// Fetch returns the blob's path — the file is already local.
func (s *LocalStore) Fetch(sha string) (string, error) {
	if err := checkSHA(sha); err != nil {
		return "", err
	}
	p := s.path(sha)
	if _, err := os.Stat(p); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return "", fmt.Errorf("%w: %s", ErrBlobNotFound, ShortSHA(sha))
		}
		return "", err
	}
	return p, nil
}

// BlobSize reports the on-disk size for recovery's truncation check.
func (s *LocalStore) BlobSize(sha string) (int64, error) {
	st, err := os.Stat(s.path(sha))
	if err != nil {
		return -1, err
	}
	return st.Size(), nil
}

// Delete unlinks the blob (and drops any pin — an explicit delete is
// the operator overriding peer protection). Open handles and mappings
// stay valid (unix unlink semantics); deleting a missing blob is a
// no-op.
func (s *LocalStore) Delete(sha string) error {
	if err := checkSHA(sha); err != nil {
		return err
	}
	s.unpin(sha)
	err := os.Remove(s.path(sha))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// PinBlob marks sha as externally referenced (idempotent, best-effort
// durable: the pin file is fsync'd so a hub crash right after a peer
// upload cannot forget the protection).
func (s *LocalStore) PinBlob(sha string) error {
	if err := checkSHA(sha); err != nil {
		return err
	}
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	pins := s.readPinsLocked()
	for _, p := range pins {
		if p == sha {
			return nil
		}
	}
	return s.writePinsLocked(append(pins, sha))
}

// PinnedBlobs lists externally referenced blobs.
func (s *LocalStore) PinnedBlobs() []string {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	return s.readPinsLocked()
}

// UnpinBlob drops a pin without touching the blob (used to roll back a
// pin taken ahead of a failed adoption).
func (s *LocalStore) UnpinBlob(sha string) { s.unpin(sha) }

func (s *LocalStore) unpin(sha string) {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	pins := s.readPinsLocked()
	kept := pins[:0]
	for _, p := range pins {
		if p != sha {
			kept = append(kept, p)
		}
	}
	if len(kept) != len(pins) {
		s.writePinsLocked(kept)
	}
}

func (s *LocalStore) readPinsLocked() []string {
	raw, err := os.ReadFile(filepath.Join(s.dir, pinsName))
	if err != nil {
		return nil
	}
	var out []string
	for _, line := range strings.Split(string(raw), "\n") {
		if line = strings.TrimSpace(line); shaRE.MatchString(line) {
			out = append(out, line)
		}
	}
	return out
}

func (s *LocalStore) writePinsLocked(pins []string) error {
	tmp := filepath.Join(s.dir, pinsName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	for _, p := range pins {
		if _, err := f.WriteString(p + "\n"); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, pinsName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// BlobTempDir keeps upload spools on the store's filesystem.
func (s *LocalStore) BlobTempDir() string { return s.dir }

// List enumerates the stored content addresses.
func (s *LocalStore) List() ([]string, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		sha, ok := strings.CutSuffix(de.Name(), snapExt)
		if ok && shaRE.MatchString(sha) {
			out = append(out, sha)
		}
	}
	return out, nil
}

// Quarantine moves the blob to dest; no local copy is a no-op.
func (s *LocalStore) Quarantine(sha, dest string) error {
	if err := checkSHA(sha); err != nil {
		return err
	}
	p := s.path(sha)
	if _, err := os.Stat(p); err != nil {
		return nil
	}
	if err := os.Rename(p, dest); err != nil {
		return os.Remove(p)
	}
	return nil
}

// CleanTemps removes stale ".tmp-*" files (crash leftovers) and reports
// what it deleted.
func (s *LocalStore) CleanTemps() []string {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var removed []string
	for _, de := range des {
		if !de.IsDir() && strings.HasPrefix(de.Name(), ".tmp-") {
			if os.Remove(filepath.Join(s.dir, de.Name())) == nil {
				removed = append(removed, de.Name())
			}
		}
	}
	return removed
}
