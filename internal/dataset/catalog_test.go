package dataset

import (
	"bytes"
	"compress/gzip"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphdiam/internal/gen"
	"graphdiam/internal/gio"
	"graphdiam/internal/graph"
)

// edgeListText renders g as an edge-list string.
func edgeListText(t *testing.T, g *graph.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := gio.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func mustGen(t *testing.T, spec string, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.FromSpec(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCatalogIngestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	g := mustGen(t, "mesh:16", 1)
	in, err := c.Ingest("mesh", strings.NewReader(edgeListText(t, g)), FormatAuto, "test upload")
	if err != nil {
		t.Fatal(err)
	}
	if in.Format != FormatEdgeList {
		t.Fatalf("sniffed format %q, want edgelist", in.Format)
	}
	if in.NumNodes != g.NumNodes() || in.NumEdges != g.NumEdges() {
		t.Fatalf("info shape (%d,%d), want (%d,%d)", in.NumNodes, in.NumEdges, g.NumNodes(), g.NumEdges())
	}
	ld, err := c.Load("mesh")
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, g, ld.Graph)

	if _, err := c.Load("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing name: err = %v, want ErrNotFound", err)
	}
	if _, err := c.Verify("mesh"); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestCatalogGzipAndFormatSniffing(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g := mustGen(t, "mesh:8", 2)

	var dimacs bytes.Buffer
	if err := gio.WriteDIMACS(&dimacs, g); err != nil {
		t.Fatal(err)
	}
	var gzDimacs bytes.Buffer
	zw := gzip.NewWriter(&gzDimacs)
	zw.Write(dimacs.Bytes())
	zw.Close()

	in, err := c.Ingest("roads", bytes.NewReader(gzDimacs.Bytes()), FormatAuto, "gz upload")
	if err != nil {
		t.Fatalf("gzipped dimacs ingest: %v", err)
	}
	if in.Format != FormatDIMACS {
		t.Fatalf("sniffed %q through gzip, want dimacs", in.Format)
	}
	ld, err := c.Load("roads")
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, g, ld.Graph)

	var bin bytes.Buffer
	if err := gio.WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	if in, err = c.Ingest("bin", bytes.NewReader(bin.Bytes()), FormatAuto, ""); err != nil {
		t.Fatalf("binary ingest: %v", err)
	}
	if in.Format != FormatBinary {
		t.Fatalf("sniffed %q, want binary", in.Format)
	}
}

func TestCatalogDedupSharesOneFile(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g := mustGen(t, "rmat:7", 5)
	a, err := c.IngestGraph("alpha", g, FormatBinary, "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.IngestGraph("beta", g, FormatBinary, "")
	if err != nil {
		t.Fatal(err)
	}
	if a.SHA256 != b.SHA256 {
		t.Fatalf("identical graphs got different content addresses")
	}
	des, err := os.ReadDir(filepath.Join(dir, snapshotsDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 1 {
		t.Fatalf("%d snapshot files for deduplicated content, want 1", len(des))
	}
	if got := c.TotalBytes(); got != a.Bytes {
		t.Fatalf("TotalBytes = %d counts shared snapshot twice (file is %d)", got, a.Bytes)
	}

	// Removing one alias keeps the shared file; removing the last unlinks.
	if err := c.Remove("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotsDir, a.SHA256+snapExt)); err != nil {
		t.Fatalf("shared snapshot unlinked while still referenced: %v", err)
	}
	if err := c.Remove("beta"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotsDir, a.SHA256+snapExt)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unreferenced snapshot survived: %v", err)
	}
}

func TestCatalogSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := mustGen(t, "road:10", 3)
	if _, err := c.IngestGraph("usa", g, FormatDIMACS, "dimacs file"); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	in, err := c2.Info("usa")
	if err != nil {
		t.Fatalf("entry lost across restart: %v", err)
	}
	if in.Source != "dimacs file" || in.Format != FormatDIMACS {
		t.Fatalf("provenance lost: %+v", in)
	}
	ld, err := c2.Load("usa")
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, g, ld.Graph)
}

func TestCatalogQuarantinesCorruptSnapshotOnOpen(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	good := mustGen(t, "mesh:6", 1)
	bad := mustGen(t, "mesh:7", 1)
	if _, err := c.IngestGraph("good", good, FormatBinary, ""); err != nil {
		t.Fatal(err)
	}
	inBad, err := c.IngestGraph("bad", bad, FormatBinary, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Corrupt bad's header on disk.
	path := filepath.Join(dir, snapshotsDir, inBad.SHA256+snapExt)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[numEdgesOff] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("boot failed instead of quarantining: %v", err)
	}
	defer c2.Close()
	if _, err := c2.Info("bad"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt entry still cataloged: %v", err)
	}
	if _, err := c2.Load("good"); err != nil {
		t.Fatalf("healthy sibling entry lost: %v", err)
	}
	qdes, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(qdes) == 0 {
		t.Fatalf("corrupt snapshot not quarantined (err=%v, files=%d)", err, len(qdes))
	}
	// A third boot must be clean and stable.
	c2.Close()
	c3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if got := c3.names(); len(got) != 1 || got[0] != "good" {
		t.Fatalf("post-recovery catalog = %v, want [good]", got)
	}
}

func TestCatalogRecoversFromMissingFileAndOrphans(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := c.IngestGraph("gone", mustGen(t, "mesh:5", 1), FormatBinary, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestGraph("kept", mustGen(t, "mesh:9", 1), FormatBinary, ""); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Simulate a crash aftermath: one referenced file vanished, one orphan
	// snapshot and one stray temp file appeared.
	os.Remove(filepath.Join(dir, snapshotsDir, in.SHA256+snapExt))
	orphan := filepath.Join(dir, snapshotsDir, strings.Repeat("ab", 32)+snapExt)
	if _, err := WriteSnapshot(orphan, mustGen(t, "path:9", 1)); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, snapshotsDir, ".tmp-999-x")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := c2.names(); len(got) != 1 || got[0] != "kept" {
		t.Fatalf("recovered catalog = %v, want [kept]", got)
	}
	for _, p := range []string{orphan, tmp} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("garbage %s survived recovery", filepath.Base(p))
		}
	}
}

func TestCatalogByteBudgetEviction(t *testing.T) {
	// Three equal-shape meshes with different seeds: identical snapshot
	// sizes, distinct content addresses.
	g1 := mustGen(t, "mesh:12", 1)
	g2 := mustGen(t, "mesh:12", 2)
	g3 := mustGen(t, "mesh:12", 3)

	// Probe one snapshot's size to derive a two-snapshot budget.
	probeDir := t.TempDir()
	probe, err := Open(probeDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pin, err := probe.IngestGraph("probe", g1, FormatBinary, "")
	if err != nil {
		t.Fatal(err)
	}
	probe.Close()

	dir := t.TempDir()
	c, err := Open(dir, Options{ByteBudget: 2 * pin.Bytes})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Deterministic monotone clock so LRU ordering is exact.
	fake := time.Unix(1_700_000_000, 0)
	c.now = func() time.Time {
		fake = fake.Add(time.Second)
		return fake
	}

	if _, err := c.IngestGraph("a", g1, FormatBinary, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestGraph("b", g2, FormatBinary, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load("a"); err != nil { // bump a's recency past b's
		t.Fatal(err)
	}
	if _, err := c.IngestGraph("c", g3, FormatBinary, ""); err != nil {
		t.Fatal(err)
	}

	if got := c.names(); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("after eviction catalog = %v, want [a c]", got)
	}
	if _, err := c.Load("b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU victim still loadable: %v", err)
	}
	if total := c.TotalBytes(); total > 2*pin.Bytes {
		t.Fatalf("TotalBytes %d exceeds budget %d", total, 2*pin.Bytes)
	}
	des, err := os.ReadDir(filepath.Join(dir, snapshotsDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 2 {
		t.Fatalf("%d snapshot files after eviction, want 2", len(des))
	}

	// A single snapshot bigger than the whole budget is rejected outright.
	tiny, err := Open(t.TempDir(), Options{ByteBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tiny.Close()
	if _, err := tiny.IngestGraph("huge", g1, FormatBinary, ""); err == nil {
		t.Fatal("snapshot larger than the budget accepted")
	}
}

func TestCatalogLoadSharesMappingsBySHA(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g := mustGen(t, "mesh:9", 4)
	if _, err := c.IngestGraph("one", g, FormatBinary, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestGraph("two", g, FormatBinary, ""); err != nil {
		t.Fatal(err)
	}
	a, err := c.Load("one")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Load("one")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("repeat Load of one name mapped the snapshot twice")
	}
	// A different name with identical content shares the mapping too.
	d, err := c.Load("two")
	if err != nil {
		t.Fatal(err)
	}
	if d != a {
		t.Fatal("alias name mapped the shared snapshot twice")
	}
	if len(c.mapped) != 1 {
		t.Fatalf("%d open mappings, want 1", len(c.mapped))
	}
}

func TestCatalogRejectsBadNames(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g := mustGen(t, "path:4", 1)
	for _, name := range []string{"", "../escape", "a/b", ".hidden", strings.Repeat("x", 200)} {
		if _, err := c.IngestGraph(name, g, FormatBinary, ""); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
}
