package dataset

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"graphdiam/internal/graph"
)

// sampleDelta builds a non-trivial delta touching inserts, removals,
// and a reweight.
func sampleDelta() *EdgeDelta {
	return &EdgeDelta{
		Ins: []DeltaIns{
			{U: 0, V: 7, W: 2.5},
			{U: 3, V: 4, W: 1.0},
			{U: 10, V: 11, W: 0.125},
		},
		Rem: []DeltaRem{
			{U: 1, V: 2},
			{U: 5, V: 6},
		},
	}
}

func TestDeltaFrameRoundTrip(t *testing.T) {
	d := sampleDelta()
	buf, h, err := EncodeDeltaFrame(d)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumIns != 3 || h.NumRem != 2 {
		t.Fatalf("header counts (%d,%d), want (3,2)", h.NumIns, h.NumRem)
	}
	if h.FileBytes != int64(len(buf)) {
		t.Fatalf("header declares %d bytes, frame is %d", h.FileBytes, len(buf))
	}
	got, gh, err := DecodeDeltaFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if gh != h {
		t.Fatalf("decoded header %+v != encoded %+v", gh, h)
	}
	if len(got.Ins) != len(d.Ins) || len(got.Rem) != len(d.Rem) {
		t.Fatalf("decoded shape (+%d -%d)", len(got.Ins), len(got.Rem))
	}
	for i := range d.Ins {
		if got.Ins[i] != d.Ins[i] {
			t.Fatalf("insertion %d: %+v != %+v", i, got.Ins[i], d.Ins[i])
		}
	}
	for i := range d.Rem {
		if got.Rem[i] != d.Rem[i] {
			t.Fatalf("removal %d: %+v != %+v", i, got.Rem[i], d.Rem[i])
		}
	}
	// Content addressing: identical deltas encode to the same address,
	// different deltas to different ones.
	_, h2, err := EncodeDeltaFrame(sampleDelta())
	if err != nil {
		t.Fatal(err)
	}
	if h2.SHAHex() != h.SHAHex() {
		t.Fatal("identical delta got a different content address")
	}
	other := sampleDelta()
	other.Ins[0].W = 99
	_, h3, err := EncodeDeltaFrame(other)
	if err != nil {
		t.Fatal(err)
	}
	if h3.SHAHex() == h.SHAHex() {
		t.Fatal("distinct deltas share a content address")
	}
}

func TestDeltaFrameFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.gdd")
	wh, err := WriteDeltaFrame(path, sampleDelta())
	if err != nil {
		t.Fatal(err)
	}
	d, lh, err := LoadDeltaFrame(path)
	if err != nil {
		t.Fatal(err)
	}
	if lh != wh {
		t.Fatalf("loaded header %+v != written %+v", lh, wh)
	}
	if len(d.Ins) != 3 || len(d.Rem) != 2 {
		t.Fatalf("loaded shape (+%d -%d)", len(d.Ins), len(d.Rem))
	}
	if vh, err := verifyDeltaFile(path); err != nil || vh.SHAHex() != wh.SHAHex() {
		t.Fatalf("verifyDeltaFile: %v (sha %s, want %s)", err, vh.SHAHex(), wh.SHAHex())
	}
}

// TestDeltaFrameDecodeRejectsCorruption flips every class of field a
// hostile or bit-rotted frame could present.
func TestDeltaFrameDecodeRejectsCorruption(t *testing.T) {
	valid, _, err := EncodeDeltaFrame(sampleDelta())
	if err != nil {
		t.Fatal(err)
	}
	le := binary.LittleEndian
	// recrc fixes up the header CRC so the mutation under test — not the
	// checksum — is what the decoder trips on.
	recrc := func(b []byte) []byte {
		le.PutUint32(b[dCRCOff:], crc32.ChecksumIEEE(b[:dCRCOff]))
		return b
	}
	mutate := func(fn func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return fn(b)
	}
	cases := map[string][]byte{
		"short header": valid[:deltaHeaderSize-1],
		"bad magic": mutate(func(b []byte) []byte {
			le.PutUint32(b[dMagicOff:], 0xdeadbeef)
			return recrc(b)
		}),
		"bad version": mutate(func(b []byte) []byte {
			le.PutUint32(b[dVersionOff:], 42)
			return recrc(b)
		}),
		"bad crc": mutate(func(b []byte) []byte {
			b[dCRCOff] ^= 0xff
			return b
		}),
		// The length-prefix lie: counts claim terabytes of records while
		// handing over a few dozen bytes. Must be rejected before any
		// count-proportional allocation.
		"length-prefix lie": mutate(func(b []byte) []byte {
			le.PutUint64(b[dNumInsOff:], 1<<39)
			return recrc(b)
		}),
		"count/size mismatch": mutate(func(b []byte) []byte {
			le.PutUint64(b[dNumRemOff:], 3) // declares one more removal than present
			return recrc(b)
		}),
		"truncated records": valid[:len(valid)-4],
		"trailing garbage":  append(append([]byte(nil), valid...), 0x00),
		"payload corruption": mutate(func(b []byte) []byte {
			b[len(b)-1] ^= 0x01 // flips a record byte; header stays valid
			return b
		}),
		"declared-bytes lie": mutate(func(b []byte) []byte {
			le.PutUint64(b[dFileBytesOff:], uint64(len(b)+8))
			return recrc(b)
		}),
	}
	for name, buf := range cases {
		if _, _, err := DecodeDeltaFrame(buf); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}
	// And the pristine frame still decodes (the mutate helper copied).
	if _, _, err := DecodeDeltaFrame(valid); err != nil {
		t.Fatalf("valid frame rejected after mutation tests: %v", err)
	}
}

func TestEncodeDeltaFrameRejectsInvalidRecords(t *testing.T) {
	cases := map[string]*EdgeDelta{
		"zero weight":     {Ins: []DeltaIns{{U: 0, V: 1, W: 0}}},
		"negative weight": {Ins: []DeltaIns{{U: 0, V: 1, W: -1}}},
		"NaN weight":      {Ins: []DeltaIns{{U: 0, V: 1, W: math.NaN()}}},
		"Inf weight":      {Ins: []DeltaIns{{U: 0, V: 1, W: math.Inf(1)}}},
		"self-loop ins":   {Ins: []DeltaIns{{U: 2, V: 2, W: 1}}},
		"self-loop rem":   {Rem: []DeltaRem{{U: 2, V: 2}}},
	}
	for name, d := range cases {
		if _, _, err := EncodeDeltaFrame(d); err == nil {
			t.Errorf("%s: encoded successfully", name)
		}
	}
}

func TestDecodeDeltaStreamText(t *testing.T) {
	text := "# a comment\n\n+ 0 7 2.5\n- 1 2\n  + 3 4 1.0  \n# trailing comment\n- 5 6\n"
	d, err := DecodeDeltaStream(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Ins) != 2 || len(d.Rem) != 2 {
		t.Fatalf("decoded shape (+%d -%d), want (+2 -2)", len(d.Ins), len(d.Rem))
	}
	if d.Ins[0] != (DeltaIns{U: 0, V: 7, W: 2.5}) || d.Rem[1] != (DeltaRem{U: 5, V: 6}) {
		t.Fatalf("decoded records %+v / %+v", d.Ins, d.Rem)
	}

	// The same text gzip-wrapped decodes identically (sniffed).
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write([]byte(text))
	zw.Close()
	dz, err := DecodeDeltaStream(bytes.NewReader(gz.Bytes()))
	if err != nil {
		t.Fatalf("gzipped stream: %v", err)
	}
	if len(dz.Ins) != 2 || len(dz.Rem) != 2 || dz.Ins[1] != d.Ins[1] {
		t.Fatalf("gzip decode diverged: %+v", dz)
	}
}

func TestDecodeDeltaStreamRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"unknown verb":     "* 1 2 3\n",
		"short insert":     "+ 1 2\n",
		"long removal":     "- 1 2 3\n",
		"unparsable node":  "+ x 2 1.0\n",
		"unparsable wt":    "+ 1 2 heavy\n",
		"negative weight":  "+ 1 2 -3\n",
		"self-loop insert": "+ 4 4 1\n",
	}
	for name, text := range cases {
		_, err := DecodeDeltaStream(strings.NewReader(text))
		var bi *BadInputError
		if !errors.As(err, &bi) {
			t.Errorf("%s: err = %v, want BadInputError", name, err)
		}
	}
	// A gzip stream with a corrupted trailer is the client's fault too.
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write([]byte("+ 1 2 3\n"))
	zw.Close()
	corrupt := gz.Bytes()
	corrupt[len(corrupt)-5] ^= 0x01
	var bi *BadInputError
	if _, err := DecodeDeltaStream(bytes.NewReader(corrupt)); !errors.As(err, &bi) {
		t.Errorf("corrupt gzip trailer: err = %v, want BadInputError", err)
	}
}

func TestApplyEdgeDeltaSemantics(t *testing.T) {
	// Base: path 0-1-2-3 with distinct weights.
	b := graph.NewBuilder(4, 3)
	b.AddEdge(0, 1, 1.0)
	b.AddEdge(1, 2, 2.0)
	b.AddEdge(2, 3, 3.0)
	g := b.Build()

	// Remove an absent edge: graph unchanged bit for bit.
	same, err := ApplyEdgeDelta(g, &EdgeDelta{Rem: []DeltaRem{{U: 0, V: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if materializedHeader(same).SHAHex() != materializedHeader(g).SHAHex() {
		t.Fatal("removing an absent edge changed the graph's address")
	}

	// Reweight idiom: remove {1,2} and reinsert at a new weight in one
	// delta. Removals apply first, so the inserted weight wins even
	// though the builder's parallel-edge rule keeps the minimum.
	rw, err := ApplyEdgeDelta(g, &EdgeDelta{
		Ins: []DeltaIns{{U: 1, V: 2, W: 9.0}},
		Rem: []DeltaRem{{U: 1, V: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := rw.EdgeWeight(1, 2); !ok || w != 9.0 {
		t.Fatalf("reweighted edge weight %v (present=%v), want 9", w, ok)
	}
	if rw.NumEdges() != 3 {
		t.Fatalf("reweight changed edge count to %d", rw.NumEdges())
	}

	// Inserting an edge that already exists goes through the min-weight
	// parallel-edge rule, exactly like static ingest.
	min, err := ApplyEdgeDelta(g, &EdgeDelta{Ins: []DeltaIns{{U: 1, V: 2, W: 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := min.EdgeWeight(1, 2); w != 0.5 {
		t.Fatalf("min-weight rule gave %v, want 0.5", w)
	}

	// Node growth: inserting an endpoint past n extends the vertex set;
	// removals never shrink it.
	grown, err := ApplyEdgeDelta(g, &EdgeDelta{Ins: []DeltaIns{{U: 3, V: 9, W: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if grown.NumNodes() != 10 || grown.NumEdges() != 4 {
		t.Fatalf("grown shape (%d,%d), want (10,4)", grown.NumNodes(), grown.NumEdges())
	}
	shrunk, err := ApplyEdgeDelta(g, &EdgeDelta{Rem: []DeltaRem{{U: 2, V: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.NumNodes() != 4 || shrunk.NumEdges() != 2 {
		t.Fatalf("post-removal shape (%d,%d), want (4,2)", shrunk.NumNodes(), shrunk.NumEdges())
	}
}

// TestMaterializedHeaderMatchesWriteSnapshot pins the head-address
// definition: the in-memory header must agree byte for byte with what
// WriteSnapshot puts on disk — shape, stats, size, and payload SHA.
func TestMaterializedHeaderMatchesWriteSnapshot(t *testing.T) {
	for _, spec := range []string{"mesh:9", "rmat:7", "path:5"} {
		g := mustGen(t, spec, 11)
		want := materializedHeader(g)
		path := filepath.Join(t.TempDir(), "s.gds")
		got, err := WriteSnapshot(path, g)
		if err != nil {
			t.Fatal(err)
		}
		if got.SHAHex() != want.SHAHex() {
			t.Fatalf("%s: materializedHeader sha %s, WriteSnapshot sha %s", spec, want.SHAHex(), got.SHAHex())
		}
		if got.NumNodes != want.NumNodes || got.NumEdges != want.NumEdges || got.FileBytes != want.FileBytes {
			t.Fatalf("%s: header shape mismatch: mem %+v disk %+v", spec, want, got)
		}
	}
}

func TestDeltaTouched(t *testing.T) {
	d := &EdgeDelta{
		Ins: []DeltaIns{{U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}},
		Rem: []DeltaRem{{U: 3, V: 4}},
	}
	touched := d.Touched()
	if len(touched) != 4 {
		t.Fatalf("touched %v, want 4 distinct nodes", touched)
	}
	seen := map[graph.NodeID]bool{}
	for _, v := range touched {
		seen[v] = true
	}
	for _, want := range []graph.NodeID{1, 2, 3, 4} {
		if !seen[want] {
			t.Fatalf("touched %v misses node %d", touched, want)
		}
	}
}
