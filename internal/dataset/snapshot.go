// Package dataset is graphdiam's persistence layer: a content-addressed
// catalog of graph snapshots that survive process restarts and load in
// O(1) time via mmap.
//
// A snapshot (".gds") is the CSR representation of a graph.Graph written
// verbatim: a 4 KiB header page followed by the offset, target, and weight
// arrays, each page-aligned and little-endian. Because the on-disk layout
// is the in-memory layout, loading is a single mmap plus three slice
// casts and one branch-free structural sweep — no parsing, no allocation
// proportional to the graph, and the summary statistics cached at Build
// time ride along in the header so nothing is recomputed. On platforms
// without mmap (or big-endian hosts) the same API transparently falls
// back to io.ReadFull into heap slices.
//
// Snapshots are immutable and content-addressed: the SHA-256 of the
// logical payload (node/edge counts plus the three arrays) both names the
// file in a Catalog and detects corruption. The header carries a CRC-32 of
// itself for O(1) sanity checks at load time; VerifySnapshot re-hashes the
// payload and deep-checks the CSR invariants for offline auditing.
package dataset

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"

	"graphdiam/internal/graph"
)

const (
	snapMagic   = 0x31534447 // "GDS1", little-endian
	snapVersion = 1
	pageSize    = 4096 // section alignment; also the header page size

	// Header field offsets. The header occupies the first page; bytes
	// beyond crcOff+4 are zero padding.
	magicOff      = 0
	versionOff    = 4
	numNodesOff   = 8
	numEdgesOff   = 16
	minWeightOff  = 24
	maxWeightOff  = 32
	avgWeightOff  = 40
	maxDegreeOff  = 48
	offsetsOffOff = 56
	targetsOffOff = 64
	weightsOffOff = 72
	fileBytesOff  = 80
	shaOff        = 88
	crcOff        = 120 // CRC-32 (IEEE) of header bytes [0, crcOff)
)

// hostLittleEndian reports whether the running CPU is little-endian; the
// zero-copy paths require it (the format itself is always little-endian).
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Header is the decoded snapshot header: the graph's shape, its cached
// statistics, and the content address.
type Header struct {
	NumNodes   int
	NumEdges   int
	Stats      graph.Stats
	FileBytes  int64
	PayloadSHA [32]byte
}

// SHAHex returns the content address as lowercase hex — the string form
// used in catalog manifests and snapshot file names.
func (h Header) SHAHex() string { return hex.EncodeToString(h.PayloadSHA[:]) }

// layout is the derived section placement for a graph of shape (n, m).
type layout struct {
	offsetsOff, offsetsLen int64 // 8*(n+1) bytes
	targetsOff, targetsLen int64 // 4*2m bytes
	weightsOff, weightsLen int64 // 8*2m bytes
	fileBytes              int64
}

// pageAlign rounds up to the next multiple of pageSize.
func pageAlign(v int64) int64 { return (v + pageSize - 1) &^ (pageSize - 1) }

func layoutFor(n, m int) layout {
	var l layout
	l.offsetsOff = pageSize
	l.offsetsLen = 8 * int64(n+1)
	l.targetsOff = pageAlign(l.offsetsOff + l.offsetsLen)
	l.targetsLen = 4 * 2 * int64(m)
	l.weightsOff = pageAlign(l.targetsOff + l.targetsLen)
	l.weightsLen = 8 * 2 * int64(m)
	l.fileBytes = l.weightsOff + l.weightsLen
	return l
}

// encodeHeader renders h into a header page. The section placement is
// always derived from (n, m), so it is encoded rather than trusted twice.
func encodeHeader(h Header) []byte {
	l := layoutFor(h.NumNodes, h.NumEdges)
	buf := make([]byte, pageSize)
	le := binary.LittleEndian
	le.PutUint32(buf[magicOff:], snapMagic)
	le.PutUint32(buf[versionOff:], snapVersion)
	le.PutUint64(buf[numNodesOff:], uint64(h.NumNodes))
	le.PutUint64(buf[numEdgesOff:], uint64(h.NumEdges))
	le.PutUint64(buf[minWeightOff:], math.Float64bits(h.Stats.MinWeight))
	le.PutUint64(buf[maxWeightOff:], math.Float64bits(h.Stats.MaxWeight))
	le.PutUint64(buf[avgWeightOff:], math.Float64bits(h.Stats.AvgWeight))
	le.PutUint64(buf[maxDegreeOff:], uint64(h.Stats.MaxDegree))
	le.PutUint64(buf[offsetsOffOff:], uint64(l.offsetsOff))
	le.PutUint64(buf[targetsOffOff:], uint64(l.targetsOff))
	le.PutUint64(buf[weightsOffOff:], uint64(l.weightsOff))
	le.PutUint64(buf[fileBytesOff:], uint64(l.fileBytes))
	copy(buf[shaOff:], h.PayloadSHA[:])
	le.PutUint32(buf[crcOff:], crc32.ChecksumIEEE(buf[:crcOff]))
	return buf
}

// decodeHeader parses and sanity-checks a header page against the actual
// file size. Every check here is O(1); a header that passes cannot make
// the loader index outside the file or allocate absurdly.
func decodeHeader(buf []byte, fileSize int64) (Header, layout, error) {
	var h Header
	if len(buf) < pageSize {
		return h, layout{}, fmt.Errorf("dataset: short header: %d bytes", len(buf))
	}
	le := binary.LittleEndian
	if m := le.Uint32(buf[magicOff:]); m != snapMagic {
		return h, layout{}, fmt.Errorf("dataset: bad magic %#x (not a .gds snapshot)", m)
	}
	if v := le.Uint32(buf[versionOff:]); v != snapVersion {
		return h, layout{}, fmt.Errorf("dataset: unsupported snapshot version %d", v)
	}
	if got, want := crc32.ChecksumIEEE(buf[:crcOff]), le.Uint32(buf[crcOff:]); got != want {
		return h, layout{}, fmt.Errorf("dataset: header CRC mismatch (got %#x, want %#x)", got, want)
	}
	n := le.Uint64(buf[numNodesOff:])
	m := le.Uint64(buf[numEdgesOff:])
	if n > 1<<32 || m > 1<<40 {
		return h, layout{}, fmt.Errorf("dataset: implausible shape n=%d m=%d", n, m)
	}
	h.NumNodes, h.NumEdges = int(n), int(m)
	h.Stats = graph.Stats{
		NumNodes:  h.NumNodes,
		NumEdges:  h.NumEdges,
		MinWeight: math.Float64frombits(le.Uint64(buf[minWeightOff:])),
		MaxWeight: math.Float64frombits(le.Uint64(buf[maxWeightOff:])),
		AvgWeight: math.Float64frombits(le.Uint64(buf[avgWeightOff:])),
		MaxDegree: int(le.Uint64(buf[maxDegreeOff:])),
	}
	copy(h.PayloadSHA[:], buf[shaOff:shaOff+32])
	h.FileBytes = int64(le.Uint64(buf[fileBytesOff:]))

	l := layoutFor(h.NumNodes, h.NumEdges)
	if int64(le.Uint64(buf[offsetsOffOff:])) != l.offsetsOff ||
		int64(le.Uint64(buf[targetsOffOff:])) != l.targetsOff ||
		int64(le.Uint64(buf[weightsOffOff:])) != l.weightsOff ||
		h.FileBytes != l.fileBytes {
		return h, layout{}, fmt.Errorf("dataset: header sections disagree with shape n=%d m=%d", n, m)
	}
	if fileSize >= 0 && fileSize != l.fileBytes {
		return h, layout{}, fmt.Errorf("dataset: file is %d bytes, header declares %d (truncated?)", fileSize, l.fileBytes)
	}
	return h, l, nil
}

// int64Bytes, nodeIDBytes, and float64Bytes view typed slices as raw bytes
// without copying. Valid only on little-endian hosts (the format's byte
// order); big-endian hosts take the per-element conversion paths.
func int64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
}

func nodeIDBytes(s []graph.NodeID) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

func float64Bytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
}

// bytesToInt64 and friends are the inverse views over an mmap region. b
// must be 8- (resp. 4-) byte aligned, which page-aligned sections of a
// page-aligned mapping guarantee.
func bytesToInt64(b []byte, n int) []int64 {
	if n == 0 {
		return []int64{}
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
}

func bytesToNodeID(b []byte, n int) []graph.NodeID {
	if n == 0 {
		return []graph.NodeID{}
	}
	return unsafe.Slice((*graph.NodeID)(unsafe.Pointer(&b[0])), n)
}

func bytesToFloat64(b []byte, n int) []float64 {
	if n == 0 {
		return []float64{}
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
}

// payloadHash hashes the logical payload prefix (the shape); section bytes
// are streamed in by the writer/verifier.
func payloadHash(n, m int) hash.Hash {
	h := sha256.New()
	var pre [16]byte
	binary.LittleEndian.PutUint64(pre[0:], uint64(n))
	binary.LittleEndian.PutUint64(pre[8:], uint64(m))
	h.Write(pre[:])
	return h
}

// writeSection writes one typed array to w (also feeding sum) and pads to
// the next page boundary (padding is not hashed — it is not payload).
func writeSection(w *bufio.Writer, sum hash.Hash, raw []byte, end int64) error {
	if _, err := w.Write(raw); err != nil {
		return err
	}
	sum.Write(raw)
	pad := pageAlign(end) - end
	for i := int64(0); i < pad; i++ {
		if err := w.WriteByte(0); err != nil {
			return err
		}
	}
	return nil
}

// WriteSnapshot writes g to path in .gds form, fsyncs it, and returns the
// decoded header (including the content address). The file is written
// through a tmp-free single pass: payload first (hashing as it streams),
// then the header page via WriteAt. Callers that need crash-atomicity
// write to a temporary name and rename — that is the Catalog's job.
func WriteSnapshot(path string, g *graph.Graph) (Header, error) {
	offsets, targets, weights := g.RawCSR()
	n, m := g.NumNodes(), g.NumEdges()
	l := layoutFor(n, m)

	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return Header{}, err
	}
	defer f.Close()

	if _, err := f.Seek(pageSize, io.SeekStart); err != nil {
		return Header{}, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	sum := payloadHash(n, m)

	var offRaw, tgtRaw, wtRaw []byte
	if hostLittleEndian {
		offRaw, tgtRaw, wtRaw = int64Bytes(offsets), nodeIDBytes(targets), float64Bytes(weights)
	} else {
		offRaw = make([]byte, l.offsetsLen)
		for i, v := range offsets {
			binary.LittleEndian.PutUint64(offRaw[8*i:], uint64(v))
		}
		tgtRaw = make([]byte, l.targetsLen)
		for i, v := range targets {
			binary.LittleEndian.PutUint32(tgtRaw[4*i:], uint32(v))
		}
		wtRaw = make([]byte, l.weightsLen)
		for i, v := range weights {
			binary.LittleEndian.PutUint64(wtRaw[8*i:], math.Float64bits(v))
		}
	}
	if err := writeSection(bw, sum, offRaw, l.offsetsOff+l.offsetsLen); err != nil {
		return Header{}, err
	}
	if err := writeSection(bw, sum, tgtRaw, l.targetsOff+l.targetsLen); err != nil {
		return Header{}, err
	}
	if _, err := bw.Write(wtRaw); err != nil { // last section: no pad
		return Header{}, err
	}
	sum.Write(wtRaw)
	if err := bw.Flush(); err != nil {
		return Header{}, err
	}

	h := Header{NumNodes: n, NumEdges: m, Stats: g.Stats(), FileBytes: l.fileBytes}
	sum.Sum(h.PayloadSHA[:0])
	if _, err := f.WriteAt(encodeHeader(h), 0); err != nil {
		return Header{}, err
	}
	if err := f.Sync(); err != nil {
		return Header{}, err
	}
	return h, f.Close()
}

// Loaded is an open snapshot: the graph plus the resources backing it.
// When Mmapped, the graph's arrays alias the mapping — the graph must not
// be used after Close. Fallback loads own their memory and Close is a
// no-op for them.
type Loaded struct {
	Graph   *graph.Graph
	Header  Header
	Mmapped bool
	mapped  []byte
}

// Close releases the mapping (if any). The caller must guarantee the
// graph is no longer referenced.
func (l *Loaded) Close() error {
	b := l.mapped
	l.mapped = nil
	return munmapFile(b)
}

// LoadSnapshot opens path, preferring the zero-copy mmap path and falling
// back to io.ReadFull when the platform (or CPU byte order) rules mmap
// out. Loading validates the header (CRC, shape-derived bounds, file
// size) in O(1), then runs one linear structural sweep — offset
// monotonicity and target-ID range — with no parsing, branching per
// format, or allocation: the sweep is memory-bandwidth-bound
// (single-digit ms per hundred MB, still orders of magnitude under a
// re-parse) and is what guarantees a corrupt payload can never panic a
// compute goroutine: every adjacency slice stays inside the mapping and
// every target indexes inside [0, n). Weight values and the exact edge
// content are deliberately not inspected; corruption there yields wrong
// numbers, not crashes, and VerifySnapshot (payload SHA-256 + deep CSR
// checks) exists to audit for it.
func LoadSnapshot(path string) (*Loaded, error) {
	return loadSnapshot(path, false)
}

// checkStructure is the load-path safety sweep. Offset monotonicity
// (FromCSR already pins offsets[0] and the final entry) makes every
// Neighbors slice well-formed; the target range check makes every
// neighbor ID a valid index for n-sized algorithm state.
func checkStructure(offsets []int64, targets []graph.NodeID, n int) error {
	prev := int64(0)
	for u, o := range offsets {
		if o < prev {
			return fmt.Errorf("offset table not monotone at node %d (corrupt payload)", u)
		}
		prev = o
	}
	limit := graph.NodeID(n)
	for i, v := range targets {
		if v >= limit {
			return fmt.Errorf("target %d at slot %d out of range n=%d (corrupt payload)", v, i, n)
		}
	}
	return nil
}

func loadSnapshot(path string, forceFallback bool) (*Loaded, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	hdrBuf := make([]byte, pageSize)
	if _, err := io.ReadFull(f, hdrBuf); err != nil {
		return nil, fmt.Errorf("dataset: %s: short header: %w", path, err)
	}
	h, l, err := decodeHeader(hdrBuf, st.Size())
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", path, err)
	}

	if !forceFallback && mmapSupported && hostLittleEndian {
		mapped, err := mmapFile(f, l.fileBytes)
		if err == nil {
			offsets := bytesToInt64(mapped[l.offsetsOff:], h.NumNodes+1)
			targets := bytesToNodeID(mapped[l.targetsOff:], 2*h.NumEdges)
			g, err := graph.FromCSR(
				offsets,
				targets,
				bytesToFloat64(mapped[l.weightsOff:], 2*h.NumEdges),
				h.Stats,
			)
			if err == nil {
				err = checkStructure(offsets, targets, h.NumNodes)
			}
			if err != nil {
				munmapFile(mapped)
				return nil, fmt.Errorf("dataset: %s: %w", path, err)
			}
			return &Loaded{Graph: g, Header: h, Mmapped: true, mapped: mapped}, nil
		}
		// fall through to the portable path
	}

	offsets := make([]int64, h.NumNodes+1)
	targets := make([]graph.NodeID, 2*h.NumEdges)
	weights := make([]float64, 2*h.NumEdges)
	read := func(off int64, dst []byte) error {
		_, err := f.ReadAt(dst, off)
		return err
	}
	if hostLittleEndian {
		err = read(l.offsetsOff, int64Bytes(offsets))
		if err == nil {
			err = read(l.targetsOff, nodeIDBytes(targets))
		}
		if err == nil {
			err = read(l.weightsOff, float64Bytes(weights))
		}
	} else {
		err = readConverted(f, l, offsets, targets, weights)
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: read payload: %w", path, err)
	}
	g, err := graph.FromCSR(offsets, targets, weights, h.Stats)
	if err == nil {
		err = checkStructure(offsets, targets, h.NumNodes)
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", path, err)
	}
	return &Loaded{Graph: g, Header: h}, nil
}

// readConverted is the big-endian-host fallback: read raw little-endian
// sections and convert per element.
func readConverted(f *os.File, l layout, offsets []int64, targets []graph.NodeID, weights []float64) error {
	raw := make([]byte, l.offsetsLen)
	if _, err := f.ReadAt(raw, l.offsetsOff); err != nil {
		return err
	}
	for i := range offsets {
		offsets[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	raw = make([]byte, l.targetsLen)
	if _, err := f.ReadAt(raw, l.targetsOff); err != nil {
		return err
	}
	for i := range targets {
		targets[i] = graph.NodeID(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	raw = make([]byte, l.weightsLen)
	if _, err := f.ReadAt(raw, l.weightsOff); err != nil {
		return err
	}
	for i := range weights {
		weights[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return nil
}

// verifyAddress checks that path is a structurally sane snapshot file
// whose payload re-hashes to the content address stored in its header:
// the integrity core shared by VerifySnapshot, remote fetch admission,
// and blob-server upload admission. It does not load the graph.
func verifyAddress(path string) (Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return Header{}, err
	}
	hdrBuf := make([]byte, pageSize)
	if _, err := io.ReadFull(f, hdrBuf); err != nil {
		return Header{}, fmt.Errorf("dataset: %s: short header: %w", path, err)
	}
	h, l, err := decodeHeader(hdrBuf, st.Size())
	if err != nil {
		return Header{}, fmt.Errorf("dataset: %s: %w", path, err)
	}
	sum := payloadHash(h.NumNodes, h.NumEdges)
	for _, sec := range []struct{ off, n int64 }{
		{l.offsetsOff, l.offsetsLen}, {l.targetsOff, l.targetsLen}, {l.weightsOff, l.weightsLen},
	} {
		if _, err := f.Seek(sec.off, io.SeekStart); err != nil {
			return Header{}, err
		}
		if _, err := io.CopyN(sum, f, sec.n); err != nil {
			return Header{}, fmt.Errorf("dataset: %s: hash payload: %w", path, err)
		}
	}
	var got [32]byte
	sum.Sum(got[:0])
	if got != h.PayloadSHA {
		return Header{}, fmt.Errorf("dataset: %s: payload SHA-256 mismatch (corrupt snapshot)", path)
	}
	return h, nil
}

// VerifySnapshot deep-checks path: header sanity, payload SHA-256 against
// the stored content address, CSR structural invariants, and the cached
// statistics against a recomputation. It is the offline audit used by
// `dataset verify`, the background integrity sweeper, and catalog
// quarantine decisions on suspect files.
func VerifySnapshot(path string) (Header, error) {
	h, err := verifyAddress(path)
	if err != nil {
		return Header{}, err
	}

	ld, err := loadSnapshot(path, false)
	if err != nil {
		return Header{}, err
	}
	defer ld.Close()
	if err := ld.Graph.ValidateCSR(); err != nil {
		return Header{}, fmt.Errorf("dataset: %s: %w", path, err)
	}
	if err := verifyStats(ld.Graph, h.Stats); err != nil {
		return Header{}, fmt.Errorf("dataset: %s: %w", path, err)
	}
	return h, nil
}

// verifyStats recomputes the summary statistics from the arrays and
// compares them with the header's cached copy.
func verifyStats(g *graph.Graph, want graph.Stats) error {
	got := graph.Stats{
		NumNodes:  g.NumNodes(),
		NumEdges:  g.NumEdges(),
		MinWeight: math.Inf(1),
		MaxWeight: math.Inf(-1),
	}
	sum := 0.0
	slots := 0
	for u := 0; u < got.NumNodes; u++ {
		ts, ws := g.Neighbors(graph.NodeID(u))
		if d := len(ts); d > got.MaxDegree {
			got.MaxDegree = d
		}
		for _, w := range ws {
			if w < got.MinWeight {
				got.MinWeight = w
			}
			if w > got.MaxWeight {
				got.MaxWeight = w
			}
			sum += w
			slots++
		}
	}
	if slots == 0 {
		got.MinWeight, got.MaxWeight = 0, 0
	} else {
		got.AvgWeight = sum / float64(slots)
	}
	if got != want {
		return fmt.Errorf("dataset: cached stats %+v disagree with recomputation %+v", want, got)
	}
	return nil
}
