package dataset

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// SweepResult records one dataset's outcome in an integrity sweep.
type SweepResult struct {
	Name      string    `json:"name"`
	SHA256    string    `json:"sha256"`
	OK        bool      `json:"ok"`
	Skipped   bool      `json:"skipped,omitempty"` // backend unreachable: neither verified nor condemned
	Error     string    `json:"error,omitempty"`
	CheckedAt time.Time `json:"checkedAt"`
}

// SweepStatus is the catalog's sweep telemetry, served by /v2/datasets.
type SweepStatus struct {
	// Enabled reports whether a background sweeper is running.
	Enabled bool `json:"enabled"`
	// IntervalSeconds is the background sweep cadence (0 when disabled).
	IntervalSeconds float64 `json:"intervalSeconds,omitempty"`
	// Sweeps counts completed sweeps (background and explicit).
	Sweeps int64 `json:"sweeps"`
	// LastSweepAt is when the most recent sweep finished (zero before
	// the first one).
	LastSweepAt time.Time `json:"lastSweepAt"`
	// LastChecked/LastFailures/LastSkipped summarize the most recent
	// sweep; TotalFailures and TotalQuarantined accumulate over the
	// catalog's lifetime in this process.
	LastChecked      int   `json:"lastChecked"`
	LastFailures     int   `json:"lastFailures"`
	LastSkipped      int   `json:"lastSkipped"`
	TotalFailures    int64 `json:"totalFailures"`
	TotalQuarantined int64 `json:"totalQuarantined"`
	// LastResults is the most recent sweep's per-dataset detail.
	LastResults []SweepResult `json:"lastResults,omitempty"`
}

// SweepStatus returns a copy of the sweep telemetry.
func (c *Catalog) SweepStatus() SweepStatus {
	c.sweepMu.Lock()
	defer c.sweepMu.Unlock()
	st := c.sweep
	st.LastResults = append([]SweepResult(nil), c.sweep.LastResults...)
	return st
}

// SweepOnce re-verifies every cataloged snapshot end to end — payload
// SHA-256 against the content address, CSR invariants, cached stats —
// and quarantines failures exactly like boot-time recovery does: the
// local blob copy moves to quarantine/, every name referencing it drops
// from the manifest, and the manifest is republished. The daemon keeps
// serving throughout; graphs already faulted in stay valid (the store's
// registry and the mmap both survive the unlink).
//
// Shared snapshots are hashed once per unique content address, and a
// backend that is unreachable (remote tier down) marks entries skipped
// rather than condemning them. SweepOnce is what the background sweeper
// runs on its interval and what `dataset verify -watch` polls.
func (c *Catalog) SweepOnce() []SweepResult {
	entries := c.List()

	// Group names by stored blob so shared blobs hash once. A lineage
	// entry depends on every blob in its chain (base + delta frames), so
	// it appears under each; its derived head address names no blob and
	// is not swept directly — materialization re-checks it on load.
	bysha := map[string][]string{}
	isDelta := map[string]bool{}
	for _, in := range entries {
		for _, br := range in.blobRefs() {
			bysha[br.sha] = append(bysha[br.sha], in.Name)
			if br.delta {
				isDelta[br.sha] = true
			}
		}
	}

	var results []SweepResult
	failures, skipped := 0, 0
	var quarantined int64
	// A 404 from a shared tier is a tier gap, not local corruption:
	// condemning on it would let one lost hub blob erase the entry from
	// every peer's manifest. Mirror boot recovery and skip.
	_, sharedTier := c.blobs.(nameResolver)
	for sha, names := range bysha {
		verr := c.verifyBlob(sha, isDelta[sha])
		now := c.now()
		switch {
		case verr == nil:
			for _, name := range names {
				results = append(results, SweepResult{Name: name, SHA256: sha, OK: true, CheckedAt: now})
			}
		case errors.Is(verr, ErrBackendUnavailable),
			sharedTier && errors.Is(verr, ErrBlobNotFound):
			skipped += len(names)
			for _, name := range names {
				results = append(results, SweepResult{
					Name: name, SHA256: sha, Skipped: true, Error: verr.Error(), CheckedAt: now})
			}
			c.logf("sweep: skipping %s (%v)", ShortSHA(sha), verr)
		default:
			failures += len(names)
			quarantined += int64(c.condemn(sha, verr))
			for _, name := range names {
				results = append(results, SweepResult{
					Name: name, SHA256: sha, Error: verr.Error(), CheckedAt: now})
			}
		}
	}

	c.sweepMu.Lock()
	c.sweep.Sweeps++
	c.sweep.LastSweepAt = c.now()
	c.sweep.LastChecked = len(results)
	c.sweep.LastFailures = failures
	c.sweep.LastSkipped = skipped
	c.sweep.TotalFailures += int64(failures)
	c.sweep.TotalQuarantined += quarantined
	c.sweep.LastResults = results
	c.sweepMu.Unlock()
	return results
}

// verifyBlob materializes one blob and deep-checks it: full snapshot
// verification for GDS1 bases, full decode + payload re-hash for GDD1
// delta frames.
func (c *Catalog) verifyBlob(sha string, delta bool) error {
	path, err := c.blobs.Fetch(sha)
	if err != nil {
		return err
	}
	if delta {
		dh, err := verifyDeltaFile(path)
		if err != nil {
			return err
		}
		if dh.SHAHex() != sha {
			return fmt.Errorf("dataset: delta frame hashes to %s, not %s",
				ShortSHA(dh.SHAHex()), ShortSHA(sha))
		}
		return nil
	}
	h, err := VerifySnapshot(path)
	if err != nil {
		return err
	}
	if h.SHAHex() != sha {
		return fmt.Errorf("dataset: snapshot hashes to %s, not %s",
			ShortSHA(h.SHAHex()), ShortSHA(sha))
	}
	return nil
}

// condemn quarantines a corrupt blob and drops every manifest entry
// still referencing it, mirroring boot-time recovery. Returns how many
// entries were dropped. Entries re-ingested under a new address while
// the sweep hashed the old bytes are left alone.
func (c *Catalog) condemn(sha string, verr error) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for name, in := range c.entries {
		depends := false
		for _, br := range in.blobRefs() {
			if br.sha == sha {
				depends = true
				break
			}
		}
		if !depends {
			continue
		}
		delete(c.entries, name)
		dropped++
		c.logf("sweep: quarantined dataset %q (%s): %v", name, ShortSHA(sha), verr)
	}
	if dropped == 0 {
		return 0
	}
	c.quarantineBlob(sha)
	if err := c.saveManifestLocked(); err != nil {
		c.logf("sweep: manifest save after quarantine: %v", err)
	}
	return dropped
}

// StartSweeper runs SweepOnce every interval in the background until the
// returned stop function is called (idempotent) or the catalog closes.
// Starting a second sweeper stops the first.
func (c *Catalog) StartSweeper(interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.SweepOnce()
			case <-stopCh:
				return
			}
		}
	}()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			close(stopCh)
			<-done
			c.sweepMu.Lock()
			c.sweep.Enabled = false
			c.sweep.IntervalSeconds = 0
			c.sweepMu.Unlock()
		})
	}

	c.sweepMu.Lock()
	prev := c.sweepStop
	c.sweepStop = stop
	c.sweep.Enabled = true
	c.sweep.IntervalSeconds = interval.Seconds()
	c.sweepMu.Unlock()
	if prev != nil {
		prev()
		// prev's deferred status reset raced ours; reassert.
		c.sweepMu.Lock()
		c.sweep.Enabled = true
		c.sweep.IntervalSeconds = interval.Seconds()
		c.sweepMu.Unlock()
	}
	return stop
}
