package dataset

import (
	"testing"

	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

// The lineage identity property, the heart of the dynamic-graph design:
// for any base graph and any delta, materializing (base snapshot +
// delta frame) must be BYTE-identical — same CSR payload, same content
// address — to a one-shot ingest of the merged edge list. The merge
// below is written independently of ApplyEdgeDelta (a plain edge-map
// fold) so the test cannot share a bug with the code under test.

// mergeEdges folds a delta into an edge list the naive way: drop removed
// pairs, then overlay insertions keeping the minimum weight per pair
// (the builder's parallel-edge rule), growing n to cover new endpoints.
func mergeEdges(g *graph.Graph, d *EdgeDelta) *graph.Graph {
	type pair struct{ u, v graph.NodeID }
	norm := func(u, v graph.NodeID) pair {
		if u > v {
			u, v = v, u
		}
		return pair{u, v}
	}
	edges := map[pair]float64{}
	g.ForEachEdge(func(u, v graph.NodeID, w float64) {
		edges[norm(u, v)] = w
	})
	for _, rm := range d.Rem {
		delete(edges, norm(rm.U, rm.V))
	}
	n := g.NumNodes()
	for _, in := range d.Ins {
		p := norm(in.U, in.V)
		if w, ok := edges[p]; !ok || in.W < w {
			edges[p] = in.W
		}
		if int(in.V)+1 > n {
			n = int(in.V) + 1
		}
		if int(in.U)+1 > n {
			n = int(in.U) + 1
		}
	}
	b := graph.NewBuilder(n, len(edges))
	for p, w := range edges {
		b.AddEdge(p.u, p.v, w)
	}
	return b.Build()
}

// deltaFor derives a deterministic mixed delta from the graph itself:
// remove every 7th existing edge, reweight every 11th, and insert a few
// long-range edges between nodes that are not already adjacent.
func deltaFor(g *graph.Graph, r *rng.RNG) *EdgeDelta {
	d := &EdgeDelta{}
	i := 0
	g.ForEachEdge(func(u, v graph.NodeID, w float64) {
		switch {
		case i%7 == 0:
			d.Rem = append(d.Rem, DeltaRem{U: u, V: v})
		case i%11 == 0:
			d.Rem = append(d.Rem, DeltaRem{U: u, V: v})
			d.Ins = append(d.Ins, DeltaIns{U: u, V: v, W: w + 0.5})
		}
		i++
	})
	n := g.NumNodes()
	for k := 0; k < 5; k++ {
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		d.Ins = append(d.Ins, DeltaIns{U: u, V: v, W: 1 + float64(k)})
	}
	// And one endpoint beyond the current vertex set (growth).
	d.Ins = append(d.Ins, DeltaIns{U: 0, V: graph.NodeID(n + 2), W: 3.25})
	return d
}

func TestLineageMaterializationMatchesOneShotIngest(t *testing.T) {
	families := []struct {
		name string
		base func(t *testing.T) *graph.Graph
	}{
		{"road", func(t *testing.T) *graph.Graph { return mustGen(t, "road:8", 7) }},
		{"rmat", func(t *testing.T) *graph.Graph { return mustGen(t, "rmat:8", 7) }},
		{"bimodal", func(t *testing.T) *graph.Graph {
			g, err := gen.FromSpec("gnm:200:600", 7)
			if err != nil {
				t.Fatal(err)
			}
			return gen.BimodalWeights(g, 1, 100, 0.2, rng.New(7))
		}},
	}
	for _, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			base := fam.base(t)
			d := deltaFor(base, rng.New(99))
			if len(d.Ins) == 0 || len(d.Rem) == 0 {
				t.Fatalf("degenerate delta (+%d -%d) for family %s", len(d.Ins), len(d.Rem), fam.name)
			}

			// Path A: lineage — ingest the base, append the delta, load.
			lin := lineageCatalog(t, t.TempDir(), Options{})
			if _, err := lin.IngestGraph("g", base, FormatBinary, ""); err != nil {
				t.Fatal(err)
			}
			res, err := lin.AppendDelta("g", d, "")
			if err != nil {
				t.Fatal(err)
			}
			if !res.Applied {
				t.Fatal("delta with net changes reported no-op")
			}
			viaLineage, err := lin.Load("g")
			if err != nil {
				t.Fatal(err)
			}

			// Path B: one-shot — merge the edge lists independently and
			// ingest the result as a fresh snapshot.
			merged := mergeEdges(base, d)
			one := lineageCatalog(t, t.TempDir(), Options{})
			oneInfo, err := one.IngestGraph("g", merged, FormatBinary, "")
			if err != nil {
				t.Fatal(err)
			}

			// Identity: same content address, and therefore the same bytes
			// any snapshot of either would serialize to.
			if res.Info.SHA256 != oneInfo.SHA256 {
				t.Fatalf("lineage head %s != one-shot ingest %s",
					ShortSHA(res.Info.SHA256), ShortSHA(oneInfo.SHA256))
			}
			if res.Info.NumNodes != oneInfo.NumNodes || res.Info.NumEdges != oneInfo.NumEdges {
				t.Fatalf("shape (%d,%d) vs one-shot (%d,%d)",
					res.Info.NumNodes, res.Info.NumEdges, oneInfo.NumNodes, oneInfo.NumEdges)
			}
			requireIdentical(t, merged, viaLineage.Graph)

			// Survives a restart: the chain replayed from disk reaches the
			// same address (the manifest cross-check inside Load enforces
			// it; this exercises that path with nothing mapped).
			lin.Close()
			re, err := Open(lin.Dir(), Options{CompactAfter: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			reLd, err := re.Load("g")
			if err != nil {
				t.Fatalf("replay after restart: %v", err)
			}
			requireIdentical(t, merged, reLd.Graph)

			// And compaction writes a snapshot at exactly that address.
			cin, compacted, err := re.Compact("g")
			if err != nil || !compacted {
				t.Fatalf("compact: %v (compacted=%v)", err, compacted)
			}
			if cin.SHA256 != oneInfo.SHA256 {
				t.Fatalf("compacted snapshot %s != one-shot address %s",
					ShortSHA(cin.SHA256), ShortSHA(oneInfo.SHA256))
			}
		})
	}
}
