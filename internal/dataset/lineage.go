package dataset

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"graphdiam/internal/graph"
)

// Lineage operations on the catalog: append a delta frame to a
// dataset's chain, materialize a chain into a graph, and compact a
// chain back into a single snapshot. The invariants:
//
//   - Appending never mutates any existing blob. The base snapshot and
//     every earlier delta frame keep their bytes and their addresses;
//     an append only publishes one new frame blob and republishes the
//     manifest. Old lineage heads therefore remain content-addressable
//     (re-materializable from the prefix of the chain) until their
//     blobs are garbage-collected.
//   - The head address is derived, not stored: SHA-256 of the
//     materialized CSR payload, byte-identical to what a one-shot
//     ingest of the merged edge list would produce. An append that
//     changes nothing (removals of absent edges, re-insertions at the
//     same weight) keeps the head — and is committed as a no-op with
//     no new blob, so caches fleet-wide stay warm for free.
//   - Compaction writes the materialized graph as a fresh .gds
//     snapshot. By the head definition that snapshot's content address
//     IS the current head, so compaction changes which blobs store the
//     dataset without changing its identity; result caches and fleet
//     cache keys survive untouched.

// ErrHeadMoved reports an append or compaction that lost a race with a
// concurrent re-ingest of the same name: the entry's head changed
// between materialization and commit, so the operation was abandoned.
var ErrHeadMoved = errors.New("dataset: head moved concurrently")

// AppendResult reports one append: the entry after the operation, the
// head it was applied on top of, and what the delta did.
type AppendResult struct {
	Info    Info
	PrevSHA string
	// Applied is false for a no-op append (head unchanged): nothing was
	// stored and the chain did not grow.
	Applied  bool
	Ins, Rem int
	// Touched is the distinct vertex set the delta named — what the
	// store's incremental maintenance feeds on.
	Touched []graph.NodeID
}

// AppendDelta applies d on top of the named dataset's current head and
// commits the grown lineage: the delta frame is published as a
// content-addressed blob, the manifest entry's head/shape/chain are
// updated atomically, and the materialized result is cached so the
// first query against the new head pays nothing. The name resolves
// through the blob backend (Resolve), so appending on a fleet member
// that has not ingested the base adopts it first.
//
// Past the compaction thresholds the append also kicks off a background
// compaction; the head is unaffected either way.
func (c *Catalog) AppendDelta(name string, d *EdgeDelta, source string) (AppendResult, error) {
	if !nameRE.MatchString(name) {
		return AppendResult{}, &BadInputError{Err: fmt.Errorf("dataset: invalid name %q (want %s)", name, nameRE)}
	}
	if err := validateDelta(d); err != nil {
		return AppendResult{}, &BadInputError{Err: err}
	}
	c.appendMu.Lock()
	defer c.appendMu.Unlock()

	in, err := c.Resolve(name)
	if err != nil {
		return AppendResult{}, err
	}
	prev := in.SHA256

	// Materialize the current head (cached across appends by content
	// address) and apply the delta.
	ld, err := c.Load(name)
	if err != nil {
		return AppendResult{}, err
	}
	if ld.Header.SHAHex() != prev {
		return AppendResult{}, ErrHeadMoved // re-ingest raced the Resolve
	}
	newG, err := ApplyEdgeDelta(ld.Graph, d)
	if err != nil {
		return AppendResult{}, &BadInputError{Err: err}
	}
	newH := materializedHeader(newG)
	newHead := newH.SHAHex()

	res := AppendResult{
		PrevSHA: prev,
		Ins:     len(d.Ins),
		Rem:     len(d.Rem),
		Touched: d.Touched(),
	}
	if newHead == prev {
		// No-op append: identity unchanged, nothing stored, chain kept.
		res.Info = in
		return res, nil
	}

	// Publish the frame blob before the manifest references it, exactly
	// like IngestGraph publishes snapshots (crash leaves an orphan the
	// next Open garbage-collects).
	tmp := filepath.Join(c.dir, fmt.Sprintf(".ingest-%d-%d-%s.delta", os.Getpid(), tmpSeq.Add(1), name))
	dh, err := WriteDeltaFrame(tmp, d)
	if err != nil {
		os.Remove(tmp)
		return AppendResult{}, err
	}
	if c.opts.ByteBudget > 0 && in.Bytes+dh.FileBytes > c.opts.ByteBudget {
		// The grown lineage must fit whole: unlike ingest, an append
		// cannot evict its own dataset to make room for itself.
		os.Remove(tmp)
		return AppendResult{}, fmt.Errorf("%w: lineage of %q needs %d bytes after append, budget is %d",
			ErrBudgetExceeded, name, in.Bytes+dh.FileBytes, c.opts.ByteBudget)
	}
	dsha := dh.SHAHex()
	c.mu.Lock()
	c.publishing[dsha]++
	c.mu.Unlock()
	err = putBlobFile(c.blobs, dsha, tmp)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.publishing[dsha]--
	if c.publishing[dsha] <= 0 {
		delete(c.publishing, dsha)
	}
	if err != nil {
		os.Remove(tmp)
		return AppendResult{}, err
	}

	cur, ok := c.entries[name]
	if !ok || cur.SHA256 != prev {
		// A concurrent Remove or re-ingest moved the head under us
		// (appends themselves are serialized by appendMu). Abandon; the
		// published frame is orphaned and collected at the next Open.
		c.removeBlobIfUnreferencedLocked(dsha)
		return AppendResult{}, ErrHeadMoved
	}

	baseBytes := cur.Bytes
	if len(cur.Deltas) > 0 {
		baseBytes = cur.BaseBytes
	}
	nowT := c.now()
	next := &Info{
		Name:       name,
		SHA256:     newHead,
		Bytes:      cur.Bytes + dh.FileBytes,
		NumNodes:   newH.NumNodes,
		NumEdges:   newH.NumEdges,
		Format:     cur.Format,
		Source:     source,
		CreatedAt:  cur.CreatedAt,
		LastUsedAt: nowT,
		BaseSHA256: cur.base(),
		BaseBytes:  baseBytes,
		Deltas: append(append([]DeltaRef{}, cur.Deltas...),
			DeltaRef{SHA256: dsha, Bytes: dh.FileBytes, Ins: dh.NumIns, Rem: dh.NumRem}),
	}
	c.entries[name] = next
	// Cache the materialization under the new head so the store's
	// fault-in after invalidation reuses this exact graph.
	if _, exists := c.mapped[newHead]; !exists {
		c.mapped[newHead] = &Loaded{Graph: newG, Header: newH}
	}
	c.evictLocked(name)
	if err := c.saveManifestLocked(); err != nil {
		return AppendResult{}, err
	}
	res.Info = *next
	res.Applied = true
	c.opts.Metrics.appended(name, len(next.Deltas))
	c.maybeCompactLocked(next)
	return res, nil
}

// compactionDue applies the churn policy: chain length past
// CompactAfter, or cumulative delta records past CompactFraction of the
// materialized edge count.
func (c *Catalog) compactionDue(in *Info) bool {
	if c.opts.CompactAfter < 0 || len(in.Deltas) == 0 {
		return false
	}
	after := c.opts.CompactAfter
	if after == 0 {
		after = defaultCompactAfter
	}
	if len(in.Deltas) >= after {
		return true
	}
	frac := c.opts.CompactFraction
	if frac == 0 {
		frac = defaultCompactFraction
	}
	records := 0
	for _, ref := range in.Deltas {
		records += ref.Ins + ref.Rem
	}
	return in.NumEdges > 0 && float64(records) >= frac*float64(in.NumEdges)
}

// maybeCompactLocked starts a background compaction when the policy
// says the chain is past its churn threshold. Caller holds c.mu.
func (c *Catalog) maybeCompactLocked(in *Info) {
	if !c.compactionDue(in) || c.compacting[in.Name] {
		return
	}
	c.compacting[in.Name] = true
	name := in.Name
	c.compactWG.Add(1)
	go func() {
		defer c.compactWG.Done()
		defer func() {
			c.mu.Lock()
			delete(c.compacting, name)
			c.mu.Unlock()
		}()
		if _, compacted, err := c.Compact(name); err != nil && !errors.Is(err, ErrHeadMoved) {
			c.logf("background compaction of %q failed: %v", name, err)
		} else if compacted {
			c.logf("compacted delta chain of %q", name)
		}
	}()
}

// Compact folds the named dataset's delta chain into a fresh snapshot
// through the existing mmap-ready write path. The snapshot's content
// address equals the current head by construction, so the dataset's
// identity — and every cache keyed on it — survives; only the stored
// blobs change. The old base and delta blobs are dropped when nothing
// else references them. A chain-free dataset reports compacted=false.
func (c *Catalog) Compact(name string) (Info, bool, error) {
	c.appendMu.Lock()
	defer c.appendMu.Unlock()

	c.mu.Lock()
	cur, ok := c.entries[name]
	if !ok {
		c.mu.Unlock()
		return Info{}, false, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if len(cur.Deltas) == 0 {
		in := *cur
		c.mu.Unlock()
		return in, false, nil
	}
	old := *cur
	head := cur.SHA256
	c.mu.Unlock()

	ld, err := c.Load(name)
	if err != nil {
		return Info{}, false, err
	}
	if ld.Header.SHAHex() != head {
		return Info{}, false, ErrHeadMoved
	}

	tmp := filepath.Join(c.dir, fmt.Sprintf(".ingest-%d-%d-%s.compact", os.Getpid(), tmpSeq.Add(1), name))
	h, err := WriteSnapshot(tmp, ld.Graph)
	if err != nil {
		os.Remove(tmp)
		return Info{}, false, err
	}
	if h.SHAHex() != head {
		// Cannot happen unless the materialization and the writer
		// disagree about the payload — an internal invariant violation,
		// not an input error.
		os.Remove(tmp)
		return Info{}, false, fmt.Errorf("dataset: compaction of %q wrote %s, head is %s",
			name, ShortSHA(h.SHAHex()), ShortSHA(head))
	}
	c.mu.Lock()
	c.publishing[head]++
	c.mu.Unlock()
	err = putBlobFile(c.blobs, head, tmp)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.publishing[head]--
	if c.publishing[head] <= 0 {
		delete(c.publishing, head)
	}
	if err != nil {
		os.Remove(tmp)
		return Info{}, false, err
	}
	cur, ok = c.entries[name]
	if !ok || cur.SHA256 != head {
		c.removeBlobIfUnreferencedLocked(head)
		return Info{}, false, ErrHeadMoved
	}
	next := &Info{
		Name:       name,
		SHA256:     head,
		Bytes:      h.FileBytes,
		NumNodes:   h.NumNodes,
		NumEdges:   h.NumEdges,
		Format:     cur.Format,
		Source:     cur.Source,
		CreatedAt:  cur.CreatedAt,
		LastUsedAt: c.now(),
	}
	c.entries[name] = next
	for _, br := range old.blobRefs() {
		c.removeBlobIfUnreferencedLocked(br.sha)
	}
	if err := c.saveManifestLocked(); err != nil {
		return Info{}, false, err
	}
	c.opts.Metrics.compacted(name)
	return *next, true, nil
}

// materializeLineage loads the base snapshot, replays the delta chain
// in order, and returns the materialized graph with a synthesized
// header whose content address must equal the entry's recorded head.
// The caller owns the returned Loaded (heap-backed; Close is a no-op)
// unless it registers it in c.mapped.
func (c *Catalog) materializeLineage(in *Info) (*Loaded, error) {
	basePath, err := c.blobs.Fetch(in.base())
	if err != nil {
		return nil, err
	}
	base, err := LoadSnapshot(basePath)
	if err != nil {
		return nil, err
	}
	g := base.Graph
	for i, ref := range in.Deltas {
		dpath, err := c.blobs.Fetch(ref.SHA256)
		if err != nil {
			base.Close()
			return nil, err
		}
		d, dh, err := LoadDeltaFrame(dpath)
		if err != nil {
			base.Close()
			return nil, err
		}
		if dh.SHAHex() != ref.SHA256 {
			base.Close()
			return nil, fmt.Errorf("dataset: delta %d of %q hashes to %s, chain records %s",
				i, in.Name, ShortSHA(dh.SHAHex()), ShortSHA(ref.SHA256))
		}
		if g, err = ApplyEdgeDelta(g, d); err != nil {
			base.Close()
			return nil, fmt.Errorf("dataset: replay delta %d of %q: %w", i, in.Name, err)
		}
	}
	// The Builder copied everything out of the mapping; release it.
	base.Close()
	h := materializedHeader(g)
	if h.SHAHex() != in.SHA256 {
		return nil, fmt.Errorf("dataset: lineage of %q materializes to %s, manifest records head %s (corrupt chain)",
			in.Name, ShortSHA(h.SHAHex()), ShortSHA(in.SHA256))
	}
	return &Loaded{Graph: g, Header: h}, nil
}
