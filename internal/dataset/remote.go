package dataset

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// RemoteStore is a BlobStore over a shared HTTP snapshot tier: blobs are
// fetched by content address from `<base>/v2/blobs/<sha>` into a local
// read-through cache directory, so a fleet of daemons can serve one
// snapshot set while each keeps its own manifest. The protocol is what
// BlobServer speaks — point one daemon's -blob-url at another daemon (or
// at any dumb HTTP store laid out the same way).
//
// Semantics that differ from LocalStore by design:
//
//   - Delete and Quarantine act on the cache copy only; a node never
//     unlinks a shared blob its peers may reference.
//   - Fetch verifies the downloaded bytes against the content address
//     (header decode + full payload re-hash) before admitting them to the
//     cache, so a corrupted transfer or a poisoned tier entry can never
//     serve.
//   - List enumerates the cache (what local recovery GCs against), not
//     the remote tier.
type RemoteStore struct {
	base     string // e.g. "http://peer:8080", no trailing slash
	cacheDir string
	client   *http.Client

	mu       sync.Mutex
	fetching map[string]*flight // per-sha download singleflight
}

// flight is one in-progress download that concurrent fetches of the same
// address wait on.
type flight struct {
	done chan struct{}
	err  error
}

// NewRemoteStore builds a remote backend rooted at baseURL with its
// read-through cache in cacheDir. A nil client gets a default whose
// transport bounds dial/TLS and response-header latency at 30s but sets
// no overall timeout — blobs are large and download as long as bytes
// keep flowing — so a wedged peer degrades to a typed
// ErrBackendUnavailable instead of hanging the query path forever.
func NewRemoteStore(baseURL, cacheDir string, client *http.Client) (*RemoteStore, error) {
	baseURL = strings.TrimRight(baseURL, "/")
	if baseURL == "" {
		return nil, fmt.Errorf("dataset: remote blob store needs a base URL")
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return nil, err
	}
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.ResponseHeaderTimeout = 30 * time.Second
		client = &http.Client{Transport: tr}
	}
	return &RemoteStore{
		base:     baseURL,
		cacheDir: cacheDir,
		client:   client,
		fetching: map[string]*flight{},
	}, nil
}

func (s *RemoteStore) blobURL(sha string) string { return s.base + "/v2/blobs/" + sha }

// Ping probes the shared tier's blob index endpoint, classifying
// network-level failures as ErrBackendUnavailable. The daemon's
// readiness probe uses it to report "blob tier reachable" truthfully
// instead of inspecting only the local read-through cache.
func (s *RemoteStore) Ping(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/v2/blobs", nil)
	if err != nil {
		return err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return transportErr("ping", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("dataset: blob tier ping: %s", resp.Status)
	}
	return nil
}

func (s *RemoteStore) cachePath(sha string) string {
	return filepath.Join(s.cacheDir, sha+snapExt)
}

// transportErr wraps a network-level failure as backend-unavailable so
// callers can tell "the tier is down" from "the blob does not exist".
func transportErr(op string, err error) error {
	return fmt.Errorf("%w: %s: %v", ErrBackendUnavailable, op, err)
}

// Put uploads the blob to the shared tier (idempotent by address).
func (s *RemoteStore) Put(sha string, r io.Reader) error {
	if err := checkSHA(sha); err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, s.blobURL(sha), r)
	if err != nil {
		return err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return transportErr("put "+ShortSHA(sha), err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("dataset: remote put %s: %s", ShortSHA(sha), resp.Status)
	}
	return nil
}

// PutFile uploads the snapshot file and then adopts it as the cache copy
// (rename when possible), consuming path.
func (s *RemoteStore) PutFile(sha, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = s.Put(sha, f)
	f.Close()
	if err != nil {
		return err
	}
	// Warm the read-through cache with the bytes we already have; purely
	// an optimization, so failures only cost a later re-fetch.
	cache := s.cachePath(sha)
	if _, serr := os.Stat(cache); serr == nil {
		return os.Remove(path)
	}
	if os.Rename(path, cache) != nil {
		os.Remove(path)
	}
	return nil
}

// Open streams the blob: the cache copy when present, a direct GET
// (uncached — boot-time header checks should not download whole blobs
// into the cache) otherwise.
func (s *RemoteStore) Open(sha string) (io.ReadCloser, error) {
	if err := checkSHA(sha); err != nil {
		return nil, err
	}
	if f, err := os.Open(s.cachePath(sha)); err == nil {
		return f, nil
	}
	resp, err := s.client.Get(s.blobURL(sha))
	if err != nil {
		return nil, transportErr("get "+ShortSHA(sha), err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return resp.Body, nil
	case resp.StatusCode == http.StatusNotFound:
		resp.Body.Close()
		return nil, fmt.Errorf("%w: %s", ErrBlobNotFound, ShortSHA(sha))
	default:
		resp.Body.Close()
		return nil, transportErr("get "+ShortSHA(sha), errors.New(resp.Status))
	}
}

// Fetch materializes the blob in the cache (download deduplicated per
// address) and returns the cache path. Downloads are verified against the
// content address before the rename into the cache, so Fetch never
// materializes bytes that do not hash to sha.
func (s *RemoteStore) Fetch(sha string) (string, error) {
	if err := checkSHA(sha); err != nil {
		return "", err
	}
	for {
		p := s.cachePath(sha)
		if _, err := os.Stat(p); err == nil {
			return p, nil
		}
		s.mu.Lock()
		if f, ok := s.fetching[sha]; ok {
			s.mu.Unlock()
			<-f.done
			if f.err != nil {
				return "", f.err
			}
			continue // leader succeeded: cache hit on retry
		}
		f := &flight{done: make(chan struct{})}
		s.fetching[sha] = f
		s.mu.Unlock()

		f.err = s.download(sha, p)
		s.mu.Lock()
		delete(s.fetching, sha)
		s.mu.Unlock()
		close(f.done)
		if f.err != nil {
			return "", f.err
		}
		return p, nil
	}
}

// download GETs sha into a temp file, verifies the content address, and
// renames it into the cache.
func (s *RemoteStore) download(sha, dest string) error {
	resp, err := s.client.Get(s.blobURL(sha))
	if err != nil {
		return transportErr("fetch "+ShortSHA(sha), err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrBlobNotFound, ShortSHA(sha))
	case resp.StatusCode != http.StatusOK:
		return transportErr("fetch "+ShortSHA(sha), errors.New(resp.Status))
	}
	tmp := filepath.Join(s.cacheDir, fmt.Sprintf(".fetch-%d-%d", os.Getpid(), tmpSeq.Add(1)))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, cerr := io.Copy(f, resp.Body)
	if cerr == nil {
		cerr = f.Sync()
	}
	if err := f.Close(); cerr == nil {
		cerr = err
	}
	if cerr != nil {
		os.Remove(tmp)
		return transportErr("fetch "+ShortSHA(sha), cerr)
	}
	if err := checkBlobFile(tmp, sha); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, dest); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// BlobSize reports the cached copy's size, or -1 when not cached.
func (s *RemoteStore) BlobSize(sha string) (int64, error) {
	st, err := os.Stat(s.cachePath(sha))
	if err != nil {
		return -1, err
	}
	return st.Size(), nil
}

// Delete drops the cache copy only.
func (s *RemoteStore) Delete(sha string) error {
	if err := checkSHA(sha); err != nil {
		return err
	}
	err := os.Remove(s.cachePath(sha))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// List enumerates the locally cached addresses.
func (s *RemoteStore) List() ([]string, error) {
	des, err := os.ReadDir(s.cacheDir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		if sha, ok := strings.CutSuffix(de.Name(), snapExt); ok && shaRE.MatchString(sha) {
			out = append(out, sha)
		}
	}
	return out, nil
}

// Quarantine sets the cache copy aside; the shared tier is untouched.
func (s *RemoteStore) Quarantine(sha, dest string) error {
	if err := checkSHA(sha); err != nil {
		return err
	}
	p := s.cachePath(sha)
	if _, err := os.Stat(p); err != nil {
		return nil
	}
	if err := os.Rename(p, dest); err != nil {
		return os.Remove(p)
	}
	return nil
}

// CleanTemps removes stale ".fetch-*" downloads and ".tmp-*" upload
// spools (crash leftovers).
func (s *RemoteStore) CleanTemps() []string {
	des, err := os.ReadDir(s.cacheDir)
	if err != nil {
		return nil
	}
	var removed []string
	for _, de := range des {
		name := de.Name()
		if !de.IsDir() && (strings.HasPrefix(name, ".fetch-") || strings.HasPrefix(name, ".tmp-")) {
			if os.Remove(filepath.Join(s.cacheDir, name)) == nil {
				removed = append(removed, name)
			}
		}
	}
	return removed
}

// BlobTempDir keeps upload spools on the cache's filesystem.
func (s *RemoteStore) BlobTempDir() string { return s.cacheDir }

// LookupName resolves a dataset name against the remote daemon's catalog
// (`GET <base>/v2/datasets/<name>`), letting a node adopt datasets that
// were ingested on a peer sharing the blob tier. Missing names (and
// peers without a catalog) return ErrNotFound; transport failures return
// ErrBackendUnavailable.
func (s *RemoteStore) LookupName(name string) (Info, error) {
	if !nameRE.MatchString(name) {
		return Info{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	resp, err := s.client.Get(s.base + "/v2/datasets/" + name)
	if err != nil {
		return Info{}, transportErr("lookup "+name, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return Info{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	default:
		io.Copy(io.Discard, resp.Body)
		return Info{}, transportErr("lookup "+name, errors.New(resp.Status))
	}
	var in Info
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&in); err != nil {
		return Info{}, fmt.Errorf("dataset: remote lookup %q: bad response: %w", name, err)
	}
	if !shaRE.MatchString(in.SHA256) || in.NumNodes < 0 || in.NumEdges < 0 || in.Bytes <= 0 {
		return Info{}, fmt.Errorf("dataset: remote lookup %q: implausible record", name)
	}
	if len(in.Deltas) > 0 {
		// Lineage records must name well-formed blobs: adoption fetches
		// the base and every frame by these addresses.
		if !shaRE.MatchString(in.BaseSHA256) || in.BaseBytes <= 0 {
			return Info{}, fmt.Errorf("dataset: remote lookup %q: implausible lineage base", name)
		}
		for _, d := range in.Deltas {
			if !shaRE.MatchString(d.SHA256) || d.Bytes <= 0 || d.Ins < 0 || d.Rem < 0 {
				return Info{}, fmt.Errorf("dataset: remote lookup %q: implausible delta ref", name)
			}
		}
	}
	in.Name = name
	return in, nil
}

// nameResolver is the optional backend capability behind catalog-level
// remote name adoption.
type nameResolver interface {
	LookupName(name string) (Info, error)
}

// BlobServer serves a BlobStore over the fetch-by-SHA protocol
// RemoteStore speaks, relative to its mount point:
//
//	GET    /            list content addresses (JSON)
//	GET    /{sha}       stream one blob (HEAD supported)
//	PUT    /{sha}       store one blob — the body is verified against the
//	                    address (header + payload re-hash) before it is
//	                    admitted, so a buggy or malicious writer cannot
//	                    poison the shared tier
//	DELETE /{sha}       drop one blob; refused with 409 while inUse
//	                    reports it referenced (the serving node's own
//	                    manifest — delete the dataset, not its blob)
//
// inUse may be nil (no referential guard — a bare tier with no catalog).
// graphdiamd mounts it at /v2/blobs when a catalog is configured,
// passing the catalog's reference check.
func BlobServer(bs BlobStore, inUse func(sha string) bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sha := strings.Trim(r.URL.Path, "/")
		if sha == "" {
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				httpError(w, http.StatusMethodNotAllowed, "method not allowed")
				return
			}
			shas, err := bs.List()
			if err != nil {
				httpError(w, http.StatusInternalServerError, err.Error())
				return
			}
			if shas == nil {
				shas = []string{}
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"blobs": shas})
			return
		}
		if !shaRE.MatchString(sha) {
			httpError(w, http.StatusBadRequest, "malformed content address")
			return
		}
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			rc, err := bs.Open(sha)
			if err != nil {
				blobError(w, err)
				return
			}
			defer rc.Close()
			w.Header().Set("Content-Type", "application/octet-stream")
			if f, ok := rc.(*os.File); ok {
				if st, err := f.Stat(); err == nil {
					w.Header().Set("Content-Length", fmt.Sprint(st.Size()))
				}
			}
			if r.Method == http.MethodHead {
				return
			}
			io.Copy(w, rc)
		case http.MethodPut:
			if err := blobPut(bs, sha, r.Body); err != nil {
				blobError(w, err)
				return
			}
			w.WriteHeader(http.StatusCreated)
			json.NewEncoder(w).Encode(map[string]string{"stored": sha})
		case http.MethodDelete:
			if inUse != nil && inUse(sha) {
				// Unlinking a blob the serving node's manifest still
				// points at would strand its datasets with no safeguard;
				// every other deletion path checks references first.
				httpError(w, http.StatusConflict,
					"blob is referenced by this node's catalog; delete the dataset instead")
				return
			}
			if err := bs.Delete(sha); err != nil {
				blobError(w, err)
				return
			}
			json.NewEncoder(w).Encode(map[string]string{"deleted": sha})
		default:
			httpError(w, http.StatusMethodNotAllowed, "method not allowed")
		}
	})
}

// blobPut spools an uploaded blob, verifies it hashes to sha, adopts it
// into the store, and pins it: the uploader's manifest — not this
// node's — references the blob, so it must survive this node's orphan
// GC and unreferenced-blob cleanup. The spool lands on the store's own
// filesystem when it exposes one (adoption is then a rename, and a
// multi-gigabyte snapshot never detours through a tmpfs /tmp).
func blobPut(bs BlobStore, sha string, body io.Reader) error {
	dir := ""
	if td, ok := bs.(blobTempDirer); ok {
		dir = td.BlobTempDir()
	}
	tmp, err := os.CreateTemp(dir, ".tmp-put-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, cerr := io.Copy(tmp, body)
	if err := tmp.Close(); cerr == nil {
		cerr = err
	}
	if cerr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("dataset: blob upload: %w", cerr)
	}
	if err := checkBlobFile(tmpName, sha); err != nil {
		os.Remove(tmpName)
		return &BadInputError{Err: err}
	}
	// Pin BEFORE adopting the bytes: once the pin exists, a concurrent
	// dataset removal that dedups onto this address can no longer unlink
	// the blob in the window before the pin lands (blob-server uploads
	// never enter the catalog's publishing refcount, so the pin is their
	// only guard). A failed adoption rolls the pin back; a crash between
	// pin and store leaves a stale pin over a missing blob, which is
	// harmless.
	pinner, pinned := bs.(blobPinner)
	if pinned {
		if err := pinner.PinBlob(sha); err != nil {
			os.Remove(tmpName)
			return err
		}
	}
	if err := putBlobFile(bs, sha, tmpName); err != nil {
		if pinned {
			pinner.UnpinBlob(sha)
		}
		os.Remove(tmpName)
		return err
	}
	return nil
}

func blobError(w http.ResponseWriter, err error) {
	var (
		bad    *BadInputError
		tooBig *http.MaxBytesError
	)
	switch {
	case errors.Is(err, ErrBlobNotFound):
		httpError(w, http.StatusNotFound, err.Error())
	case errors.As(err, &tooBig):
		httpError(w, http.StatusRequestEntityTooLarge, err.Error())
	case errors.As(err, &bad):
		httpError(w, http.StatusBadRequest, err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// checkBlobFile confirms path is a structurally sane blob whose payload
// hashes to sha: the O(header) + O(payload-hash) integrity check shared
// by remote fetch admission and blob-server upload admission. The blob
// tier stores two frame kinds — GDS1 snapshots and GDD1 delta frames —
// dispatched on the magic, so delta frames flow through the same
// content-addressed adoption path as base snapshots.
func checkBlobFile(path, sha string) error {
	got := ""
	switch magic, err := sniffMagic(path); {
	case err != nil:
		return err
	case magic == deltaMagic:
		dh, err := verifyDeltaFile(path)
		if err != nil {
			return err
		}
		got = dh.SHAHex()
	default:
		h, err := verifyAddress(path)
		if err != nil {
			return err
		}
		got = h.SHAHex()
	}
	if got != sha {
		return fmt.Errorf("dataset: blob content hashes to %s, not %s",
			ShortSHA(got), ShortSHA(sha))
	}
	return nil
}

// sniffMagic reads the blob's leading magic word (little-endian u32).
func sniffMagic(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var b [4]byte
	if _, err := io.ReadFull(f, b[:]); err != nil {
		return 0, fmt.Errorf("dataset: blob too short for a magic word: %w", err)
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}
