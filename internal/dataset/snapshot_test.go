package dataset

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"graphdiam/internal/bsp"
	"graphdiam/internal/core"
	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

// edgeTriple is one undirected edge for exact comparisons.
type edgeTriple struct {
	u, v graph.NodeID
	w    float64
}

func edgesOf(g *graph.Graph) []edgeTriple {
	var out []edgeTriple
	g.ForEachEdge(func(u, v graph.NodeID, w float64) {
		out = append(out, edgeTriple{u, v, w})
	})
	return out
}

// requireIdentical asserts got reproduces want bit-for-bit: shape, cached
// stats, and the full ForEachEdge stream in order.
func requireIdentical(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	if want.NumNodes() != got.NumNodes() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("shape: want (%d,%d), got (%d,%d)",
			want.NumNodes(), want.NumEdges(), got.NumNodes(), got.NumEdges())
	}
	if want.Stats() != got.Stats() {
		t.Fatalf("stats: want %+v, got %+v", want.Stats(), got.Stats())
	}
	we, ge := edgesOf(want), edgesOf(got)
	if len(we) != len(ge) {
		t.Fatalf("edge streams differ in length: %d vs %d", len(we), len(ge))
	}
	for i := range we {
		if we[i] != ge[i] {
			t.Fatalf("edge %d differs: want %+v, got %+v", i, we[i], ge[i])
		}
	}
}

// families returns the property-test corpus: the gen families the paper
// benchmarks plus weight-distribution and degenerate corners.
func families(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	r := rng.New(7)
	road, err := gen.FromSpec("road:12", 5)
	if err != nil {
		t.Fatal(err)
	}
	rmat, err := gen.FromSpec("rmat:8", 9)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"road":    road,
		"rmat":    rmat,
		"bimodal": gen.BimodalWeights(gen.Mesh(12), 1e-6, 1, 0.25, r),
		"path":    gen.Path(64),
		"empty":   graph.NewBuilder(0, 0).Build(),
		"lonely":  graph.NewBuilder(5, 0).Build(), // nodes, no edges
	}
}

func TestSnapshotRoundTripAllFamilies(t *testing.T) {
	dir := t.TempDir()
	for name, g := range families(t) {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name+snapExt)
			h, err := WriteSnapshot(path, g)
			if err != nil {
				t.Fatalf("write: %v", err)
			}
			if h.NumNodes != g.NumNodes() || h.NumEdges != g.NumEdges() {
				t.Fatalf("header shape (%d,%d) vs graph (%d,%d)",
					h.NumNodes, h.NumEdges, g.NumNodes(), g.NumEdges())
			}
			for _, force := range []bool{false, true} {
				ld, err := loadSnapshot(path, force)
				if err != nil {
					t.Fatalf("load(forceFallback=%v): %v", force, err)
				}
				if !force && mmapSupported && hostLittleEndian && !ld.Mmapped {
					t.Fatalf("expected mmap-backed load")
				}
				if force && ld.Mmapped {
					t.Fatalf("forced fallback still mmapped")
				}
				requireIdentical(t, g, ld.Graph)
				ld.Close()
			}
			if _, err := VerifySnapshot(path); err != nil {
				t.Fatalf("verify: %v", err)
			}
		})
	}
}

func TestSnapshotContentAddressIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	g, err := gen.FromSpec("rmat:7", 3)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := WriteSnapshot(filepath.Join(dir, "a.gds"), g)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := WriteSnapshot(filepath.Join(dir, "b.gds"), g)
	if err != nil {
		t.Fatal(err)
	}
	if h1.PayloadSHA != h2.PayloadSHA {
		t.Fatalf("same graph hashed to %s and %s", h1.SHAHex(), h2.SHAHex())
	}
	other, err := gen.FromSpec("rmat:7", 4)
	if err != nil {
		t.Fatal(err)
	}
	h3, err := WriteSnapshot(filepath.Join(dir, "c.gds"), other)
	if err != nil {
		t.Fatal(err)
	}
	if h3.PayloadSHA == h1.PayloadSHA {
		t.Fatalf("different graphs share a content address")
	}
}

func TestSnapshotRejectsHeaderCorruption(t *testing.T) {
	dir := t.TempDir()
	g := gen.BimodalWeights(gen.Mesh(8), 0.5, 2, 0.5, rng.New(1))
	path := filepath.Join(dir, "g.gds")
	if _, err := WriteSnapshot(path, g); err != nil {
		t.Fatal(err)
	}

	flip := func(off int64) {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[off] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	flip(numNodesOff) // header corruption must fail the O(1) CRC check
	if _, err := LoadSnapshot(path); err == nil {
		t.Fatal("corrupt header loaded")
	}
	if _, err := WriteSnapshot(path, g); err != nil {
		t.Fatal(err)
	}

	// A corrupted offset table would make adjacency slicing unsafe: the
	// load-path monotonicity scan must reject it outright.
	flip(pageSize + 8) // offsets[1], low byte
	if _, err := LoadSnapshot(path); err == nil {
		t.Fatal("non-monotone offset table loaded")
	}
	if _, err := WriteSnapshot(path, g); err != nil {
		t.Fatal(err)
	}

	// A corrupted target ID (here: the high byte of the first target,
	// pushing it far beyond n) would index out of range in algorithm
	// state: the load-path range sweep must reject it.
	flip(2*pageSize + 3) // offsets fit page 1, so targets start at page 2
	if _, err := LoadSnapshot(path); err == nil {
		t.Fatal("out-of-range target ID loaded")
	}
	if _, err := WriteSnapshot(path, g); err != nil {
		t.Fatal(err)
	}

	// Corruption in per-edge content (here: a weight byte) passes the
	// cheap load checks by design — access stays memory-safe…
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	flip(st.Size() - 1)
	ld, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("edge-content corruption should not fail the cheap load path: %v", err)
	}
	ld.Close()
	// …but never survives a deep verify.
	if _, err := VerifySnapshot(path); err == nil {
		t.Fatal("corrupt payload verified clean")
	}
}

func TestSnapshotRejectsTruncation(t *testing.T) {
	dir := t.TempDir()
	g := gen.Path(100)
	path := filepath.Join(dir, "g.gds")
	if _, err := WriteSnapshot(path, g); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-1); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil {
		t.Fatal("truncated snapshot loaded")
	}
}

func TestSnapshotNotASnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk.gds")
	if err := os.WriteFile(path, make([]byte, 2*pageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil {
		t.Fatal("zero-filled file loaded as snapshot")
	}
	if err := os.WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil {
		t.Fatal("short file loaded as snapshot")
	}
}

// TestSnapshotDecompositionMetricsIdentical is the fidelity bar that
// matters for serving: a decomposition and a diameter run on a loaded
// snapshot must be indistinguishable — result fields and the paper's
// platform-independent cost metrics (rounds/messages/updates) — from the
// same run on the original in-memory graph.
func TestSnapshotDecompositionMetricsIdentical(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	for name, g := range families(t) {
		if g.NumNodes() == 0 {
			continue
		}
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name+snapExt)
			if _, err := WriteSnapshot(path, g); err != nil {
				t.Fatal(err)
			}
			for _, force := range []bool{false, true} {
				ld, err := loadSnapshot(path, force)
				if err != nil {
					t.Fatal(err)
				}
				run := func(gg *graph.Graph) *core.Clustering {
					e := bsp.New(4)
					defer e.Close()
					cl, err := core.Cluster(ctx, gg, core.Options{Seed: 42, Engine: e})
					if err != nil {
						t.Fatal(err)
					}
					return cl
				}
				want, got := run(g), run(ld.Graph)
				if want.Metrics != got.Metrics {
					t.Fatalf("metrics diverge (forceFallback=%v): original %v, snapshot %v",
						force, want.Metrics, got.Metrics)
				}
				if want.Radius != got.Radius || want.Stages != got.Stages ||
					want.NumClusters() != got.NumClusters() || want.DeltaEnd != got.DeltaEnd ||
					want.GrowingSteps != got.GrowingSteps {
					t.Fatalf("clustering outcome diverges on loaded snapshot (forceFallback=%v)", force)
				}
				ld.Close()
			}
		})
	}
}

func TestClassifyFormat(t *testing.T) {
	cases := map[string]string{
		"c road network\np sp 3 2\na 1 2 1\n": FormatDIMACS,
		"p sp 3 2\na 1 2 1\n":                 FormatDIMACS,
		"% metis comment\n3 2 001\n":          FormatMETIS,
		"# snap comment\n0 1 1\n":             FormatEdgeList,
		"0 1 0.5\n1 2 2\n":                    FormatEdgeList,
		"":                                    FormatEdgeList,
	}
	for head, want := range cases {
		got, err := ClassifyFormat([]byte(head), false)
		if err != nil || got != want {
			t.Errorf("ClassifyFormat(%q) = %s, %v, want %s", head, got, err, want)
		}
	}
	if got, err := ClassifyFormat(gioBinaryMagic, false); err != nil || got != FormatBinary {
		t.Errorf("binary magic classified as %s, %v", got, err)
	}
}
