package dataset

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// snapshotBlob writes a real .gds snapshot for spec/seed into dir and
// returns its content address and raw bytes. Conformance tests use real
// snapshots because the remote path (BlobServer PUT, RemoteStore fetch
// admission) verifies blobs structurally before accepting them.
func snapshotBlob(t *testing.T, dir, spec string, seed uint64) (sha string, raw []byte) {
	t.Helper()
	g := mustGen(t, spec, seed)
	path := filepath.Join(dir, "blob.gds")
	h, err := WriteSnapshot(path, g)
	if err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	os.Remove(path)
	return h.SHAHex(), raw
}

// blobStoreImpls enumerates the implementations under conformance test.
// shared reports shared-tier semantics: Delete/Quarantine touch only the
// local cache, so a later read re-materializes the blob instead of
// failing.
func blobStoreImpls(t *testing.T) map[string]func(t *testing.T) (bs BlobStore, shared bool) {
	return map[string]func(t *testing.T) (BlobStore, bool){
		"local": func(t *testing.T) (BlobStore, bool) {
			ls, err := NewLocalStore(filepath.Join(t.TempDir(), "blobs"))
			if err != nil {
				t.Fatal(err)
			}
			return ls, false
		},
		"remote": func(t *testing.T) (BlobStore, bool) {
			// The remote tier is a LocalStore exposed over HTTP by
			// BlobServer — exactly what a peer daemon serves.
			tier, err := NewLocalStore(filepath.Join(t.TempDir(), "tier"))
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(http.StripPrefix("/v2/blobs", BlobServer(tier, nil)))
			t.Cleanup(ts.Close)
			rs, err := NewRemoteStore(ts.URL, filepath.Join(t.TempDir(), "cache"), nil)
			if err != nil {
				t.Fatal(err)
			}
			return rs, true
		},
	}
}

// TestBlobStoreConformance runs the backend contract against every
// implementation: byte identity through Put/Open/Fetch, idempotent puts,
// not-found reporting, delete/quarantine semantics, and safety of
// concurrent Open while Delete/Put churn the same address.
func TestBlobStoreConformance(t *testing.T) {
	for name, mk := range blobStoreImpls(t) {
		t.Run(name, func(t *testing.T) {
			t.Run("PutOpenFetchByteIdentity", func(t *testing.T) {
				bs, _ := mk(t)
				sha, raw := snapshotBlob(t, t.TempDir(), "mesh:12", 1)
				if err := bs.Put(sha, bytes.NewReader(raw)); err != nil {
					t.Fatalf("Put: %v", err)
				}
				rc, err := bs.Open(sha)
				if err != nil {
					t.Fatalf("Open: %v", err)
				}
				got, err := io.ReadAll(rc)
				rc.Close()
				if err != nil || !bytes.Equal(got, raw) {
					t.Fatalf("Open returned %d bytes (err=%v), want %d identical", len(got), err, len(raw))
				}
				p, err := bs.Fetch(sha)
				if err != nil {
					t.Fatalf("Fetch: %v", err)
				}
				got, err = os.ReadFile(p)
				if err != nil || !bytes.Equal(got, raw) {
					t.Fatalf("Fetch materialized %d bytes (err=%v), want %d identical", len(got), err, len(raw))
				}
				// The materialized file must be a loadable snapshot.
				ld, err := LoadSnapshot(p)
				if err != nil {
					t.Fatalf("LoadSnapshot on fetched blob: %v", err)
				}
				ld.Close()
				shas, err := bs.List()
				if err != nil {
					t.Fatalf("List: %v", err)
				}
				found := false
				for _, s := range shas {
					found = found || s == sha
				}
				if !found {
					t.Fatalf("List %v does not contain %s", shas, ShortSHA(sha))
				}
			})

			t.Run("PutIdempotent", func(t *testing.T) {
				bs, _ := mk(t)
				sha, raw := snapshotBlob(t, t.TempDir(), "mesh:10", 2)
				for i := 0; i < 2; i++ {
					if err := bs.Put(sha, bytes.NewReader(raw)); err != nil {
						t.Fatalf("Put #%d: %v", i+1, err)
					}
				}
				p, err := bs.Fetch(sha)
				if err != nil {
					t.Fatal(err)
				}
				if got, _ := os.ReadFile(p); !bytes.Equal(got, raw) {
					t.Fatal("double Put corrupted the blob")
				}
			})

			t.Run("MissingBlob", func(t *testing.T) {
				bs, _ := mk(t)
				missing := "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff"
				if _, err := bs.Open(missing); !errors.Is(err, ErrBlobNotFound) {
					t.Fatalf("Open missing: %v, want ErrBlobNotFound", err)
				}
				if _, err := bs.Fetch(missing); !errors.Is(err, ErrBlobNotFound) {
					t.Fatalf("Fetch missing: %v, want ErrBlobNotFound", err)
				}
				if err := bs.Delete(missing); err != nil {
					t.Fatalf("Delete missing should be a no-op: %v", err)
				}
				if _, err := bs.Open("../../etc/passwd"); err == nil {
					t.Fatal("path-traversal key accepted")
				}
			})

			t.Run("DeleteSemantics", func(t *testing.T) {
				bs, shared := mk(t)
				sha, raw := snapshotBlob(t, t.TempDir(), "mesh:11", 3)
				if err := bs.Put(sha, bytes.NewReader(raw)); err != nil {
					t.Fatal(err)
				}
				if _, err := bs.Fetch(sha); err != nil {
					t.Fatal(err)
				}
				if err := bs.Delete(sha); err != nil {
					t.Fatal(err)
				}
				p, err := bs.Fetch(sha)
				if shared {
					// Shared tier: only the cache copy dropped; the blob
					// re-materializes bit-identical from the tier.
					if err != nil {
						t.Fatalf("shared-tier Fetch after Delete: %v", err)
					}
					if got, _ := os.ReadFile(p); !bytes.Equal(got, raw) {
						t.Fatal("re-fetched blob differs")
					}
				} else if !errors.Is(err, ErrBlobNotFound) {
					t.Fatalf("local Fetch after Delete: %v, want ErrBlobNotFound", err)
				}
			})

			t.Run("QuarantineSemantics", func(t *testing.T) {
				bs, shared := mk(t)
				sha, raw := snapshotBlob(t, t.TempDir(), "mesh:13", 4)
				if err := bs.Put(sha, bytes.NewReader(raw)); err != nil {
					t.Fatal(err)
				}
				if _, err := bs.Fetch(sha); err != nil {
					t.Fatal(err)
				}
				dest := filepath.Join(t.TempDir(), "quarantined.gds")
				if err := bs.Quarantine(sha, dest); err != nil {
					t.Fatal(err)
				}
				if got, err := os.ReadFile(dest); err != nil || !bytes.Equal(got, raw) {
					t.Fatalf("quarantine destination missing or differs (err=%v)", err)
				}
				if _, err := bs.Fetch(sha); !shared && !errors.Is(err, ErrBlobNotFound) {
					t.Fatalf("local Fetch after Quarantine: %v, want ErrBlobNotFound", err)
				}
			})

			t.Run("ConcurrentOpenWhileDelete", func(t *testing.T) {
				bs, _ := mk(t)
				sha, raw := snapshotBlob(t, t.TempDir(), "mesh:9", 5)
				if err := bs.Put(sha, bytes.NewReader(raw)); err != nil {
					t.Fatal(err)
				}
				const readers, iters = 4, 25
				var wg sync.WaitGroup
				errCh := make(chan error, readers*iters+iters)
				for r := 0; r < readers; r++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < iters; i++ {
							rc, err := bs.Open(sha)
							if err != nil {
								if !errors.Is(err, ErrBlobNotFound) {
									errCh <- err
								}
								continue
							}
							got, err := io.ReadAll(rc)
							rc.Close()
							// A successful read must never observe a
							// torn or partial blob.
							if err == nil && !bytes.Equal(got, raw) {
								errCh <- errors.New("read observed non-identical bytes")
							}
						}
					}()
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						if err := bs.Delete(sha); err != nil {
							errCh <- err
						}
						if err := bs.Put(sha, bytes.NewReader(raw)); err != nil {
							errCh <- err
						}
					}
				}()
				wg.Wait()
				close(errCh)
				for err := range errCh {
					t.Fatal(err)
				}
			})
		})
	}
}

// TestBlobServerRejectsMismatchedUpload pins the shared tier's admission
// check: a PUT whose bytes do not hash to the claimed address must be
// refused, or one buggy fleet member could poison every peer.
func TestBlobServerRejectsMismatchedUpload(t *testing.T) {
	tier, err := NewLocalStore(filepath.Join(t.TempDir(), "tier"))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.StripPrefix("/v2/blobs", BlobServer(tier, nil)))
	defer ts.Close()

	sha, raw := snapshotBlob(t, t.TempDir(), "mesh:8", 6)
	wrong := "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"
	put := func(addr string, body []byte) int {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v2/blobs/"+addr, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := put(wrong, raw); code != http.StatusBadRequest {
		t.Fatalf("mismatched upload accepted with status %d", code)
	}
	corrupt := append([]byte(nil), raw...)
	corrupt[pageSize+16] ^= 0x01 // flip a payload byte: address no longer matches
	if code := put(sha, corrupt); code != http.StatusBadRequest {
		t.Fatalf("corrupted upload accepted with status %d", code)
	}
	if code := put(sha, raw); code != http.StatusCreated {
		t.Fatalf("honest upload refused with status %d", code)
	}
	if _, err := tier.Fetch(sha); err != nil {
		t.Fatalf("tier did not store the honest upload: %v", err)
	}
	if shas, _ := tier.List(); len(shas) != 1 {
		t.Fatalf("tier holds %d blobs, want exactly the honest one", len(shas))
	}
}
