package dataset

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lineageCatalog opens a catalog with background compaction disabled so
// tests observe chains exactly as their appends left them.
func lineageCatalog(t *testing.T, dir string, opts Options) *Catalog {
	t.Helper()
	opts.CompactAfter = -1
	c, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// growDelta inserts one fresh edge into a mesh-shaped base — guaranteed
// to change the head.
func growDelta() *EdgeDelta {
	return &EdgeDelta{Ins: []DeltaIns{{U: 0, V: 63, W: 0.25}}}
}

func snapshotFiles(t *testing.T, dir string) map[string]bool {
	t.Helper()
	des, err := os.ReadDir(filepath.Join(dir, snapshotsDir))
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, de := range des {
		out[de.Name()] = true
	}
	return out
}

func TestAppendMovesHeadAndGrowsChain(t *testing.T) {
	dir := t.TempDir()
	c := lineageCatalog(t, dir, Options{})
	g := mustGen(t, "mesh:8", 1)
	base, err := c.IngestGraph("m", g, FormatBinary, "seed")
	if err != nil {
		t.Fatal(err)
	}

	res, err := c.AppendDelta("m", growDelta(), "first append")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Applied {
		t.Fatal("growing append reported no-op")
	}
	if res.PrevSHA != base.SHA256 {
		t.Fatalf("PrevSHA %s, want base %s", res.PrevSHA, base.SHA256)
	}
	in := res.Info
	if in.SHA256 == base.SHA256 {
		t.Fatal("head did not move")
	}
	if in.ChainLen() != 1 || in.BaseSHA256 != base.SHA256 {
		t.Fatalf("lineage %+v, want chain=1 on base %s", in, ShortSHA(base.SHA256))
	}
	if in.NumEdges != base.NumEdges+1 {
		t.Fatalf("materialized edges %d, want %d", in.NumEdges, base.NumEdges+1)
	}
	if in.Bytes <= base.Bytes {
		t.Fatalf("lineage bytes %d not larger than base %d", in.Bytes, base.Bytes)
	}

	// The materialization is the delta applied to the base, and its
	// address is the recorded head.
	ld, err := c.Load("m")
	if err != nil {
		t.Fatal(err)
	}
	if ld.Header.SHAHex() != in.SHA256 {
		t.Fatalf("loaded head %s != recorded %s", ld.Header.SHAHex(), in.SHA256)
	}
	want, err := ApplyEdgeDelta(g, growDelta())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, ld.Graph)

	// A second delta stacks.
	res2, err := c.AppendDelta("m", &EdgeDelta{Rem: []DeltaRem{{U: 0, V: 63}}}, "undo")
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Applied || res2.Info.ChainLen() != 2 {
		t.Fatalf("second append %+v, want applied with chain=2", res2.Info)
	}
	// Removing the inserted edge restores the base graph — and therefore
	// the base address: head identity is content, not history.
	if res2.Info.SHA256 != base.SHA256 {
		t.Fatalf("round-trip head %s, want base %s", res2.Info.SHA256, base.SHA256)
	}
}

func TestAppendNoOpKeepsHeadAndStoresNothing(t *testing.T) {
	dir := t.TempDir()
	c := lineageCatalog(t, dir, Options{})
	base, err := c.IngestGraph("m", mustGen(t, "mesh:8", 1), FormatBinary, "")
	if err != nil {
		t.Fatal(err)
	}
	before := snapshotFiles(t, dir)

	// Removing absent edges changes nothing.
	res, err := c.AppendDelta("m", &EdgeDelta{Rem: []DeltaRem{{U: 0, V: 63}}}, "noop")
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied {
		t.Fatal("no-op append reported applied")
	}
	if res.Info.SHA256 != base.SHA256 || res.Info.ChainLen() != 0 {
		t.Fatalf("no-op moved the entry: %+v", res.Info)
	}
	after := snapshotFiles(t, dir)
	if len(after) != len(before) {
		t.Fatalf("no-op append stored a blob: %v -> %v", before, after)
	}
}

// TestAppendNeverMutatesExistingBlobs is the acceptance-criteria pin:
// the base snapshot's bytes on disk are identical before and after
// appends, and every prior delta frame survives a further append.
func TestAppendNeverMutatesExistingBlobs(t *testing.T) {
	dir := t.TempDir()
	c := lineageCatalog(t, dir, Options{})
	base, err := c.IngestGraph("m", mustGen(t, "mesh:8", 1), FormatBinary, "")
	if err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(dir, snapshotsDir, base.SHA256+snapExt)
	baseBytes, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}

	res1, err := c.AppendDelta("m", growDelta(), "")
	if err != nil {
		t.Fatal(err)
	}
	d1 := res1.Info.Deltas[0].SHA256
	d1Bytes, err := os.ReadFile(filepath.Join(dir, snapshotsDir, d1+snapExt))
	if err != nil {
		t.Fatalf("delta frame not in blob tier: %v", err)
	}

	if _, err := c.AppendDelta("m", &EdgeDelta{Ins: []DeltaIns{{U: 1, V: 62, W: 2}}}, ""); err != nil {
		t.Fatal(err)
	}

	nowBase, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatalf("base blob gone after appends: %v", err)
	}
	if !bytes.Equal(nowBase, baseBytes) {
		t.Fatal("append mutated the base snapshot's bytes")
	}
	nowD1, err := os.ReadFile(filepath.Join(dir, snapshotsDir, d1+snapExt))
	if err != nil {
		t.Fatalf("first delta frame gone after second append: %v", err)
	}
	if !bytes.Equal(nowD1, d1Bytes) {
		t.Fatal("append mutated an earlier delta frame")
	}
}

func TestLineageSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	g := mustGen(t, "mesh:8", 1)
	if _, err := c.IngestGraph("m", g, FormatBinary, ""); err != nil {
		t.Fatal(err)
	}
	res, err := c.AppendDelta("m", growDelta(), "survives")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := lineageCatalog(t, dir, Options{})
	in, err := c2.Info("m")
	if err != nil {
		t.Fatalf("lineage entry lost across restart: %v", err)
	}
	if in.SHA256 != res.Info.SHA256 || in.ChainLen() != 1 || in.Source != "survives" {
		t.Fatalf("restarted entry %+v, want head %s chain 1", in, ShortSHA(res.Info.SHA256))
	}
	// Materialization replays base + chain from disk (nothing is mapped).
	ld, err := c2.Load("m")
	if err != nil {
		t.Fatalf("materialize after restart: %v", err)
	}
	want, err := ApplyEdgeDelta(g, growDelta())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, ld.Graph)
}

func TestLineageRemoveDropsUnreferencedBlobs(t *testing.T) {
	dir := t.TempDir()
	c := lineageCatalog(t, dir, Options{})
	if _, err := c.IngestGraph("m", mustGen(t, "mesh:8", 1), FormatBinary, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AppendDelta("m", growDelta(), ""); err != nil {
		t.Fatal(err)
	}
	if got := len(snapshotFiles(t, dir)); got != 2 {
		t.Fatalf("%d blobs before removal, want 2 (base + delta)", got)
	}
	if err := c.Remove("m"); err != nil {
		t.Fatal(err)
	}
	if got := snapshotFiles(t, dir); len(got) != 0 {
		t.Fatalf("blobs survived removal of their only referrer: %v", got)
	}
}

func TestReferencesBlobCoversLineage(t *testing.T) {
	c := lineageCatalog(t, t.TempDir(), Options{})
	base, err := c.IngestGraph("m", mustGen(t, "mesh:8", 1), FormatBinary, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.AppendDelta("m", growDelta(), "")
	if err != nil {
		t.Fatal(err)
	}
	// The base of a live lineage is load-bearing: a blob-tier DELETE is
	// refused (409 through BlobServer) as long as this returns true.
	if !c.ReferencesBlob(base.SHA256) {
		t.Fatal("base of a live lineage not reported as referenced")
	}
	if !c.ReferencesBlob(res.Info.Deltas[0].SHA256) {
		t.Fatal("delta frame of a live lineage not reported as referenced")
	}
	if c.ReferencesBlob(strings.Repeat("ab", 32)) {
		t.Fatal("random address reported as referenced")
	}
}

func TestCompactFoldsChainAndPreservesHead(t *testing.T) {
	dir := t.TempDir()
	c := lineageCatalog(t, dir, Options{})
	g := mustGen(t, "mesh:8", 1)
	if _, err := c.IngestGraph("m", g, FormatBinary, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AppendDelta("m", growDelta(), ""); err != nil {
		t.Fatal(err)
	}
	res, err := c.AppendDelta("m", &EdgeDelta{Ins: []DeltaIns{{U: 2, V: 61, W: 0.5}}}, "")
	if err != nil {
		t.Fatal(err)
	}
	head := res.Info.SHA256

	in, compacted, err := c.Compact("m")
	if err != nil {
		t.Fatal(err)
	}
	if !compacted {
		t.Fatal("two-delta chain reported nothing to compact")
	}
	if in.SHA256 != head {
		t.Fatalf("compaction moved the head: %s -> %s", ShortSHA(head), ShortSHA(in.SHA256))
	}
	if in.ChainLen() != 0 || in.BaseSHA256 != "" {
		t.Fatalf("compacted entry still carries a chain: %+v", in)
	}
	// Exactly one blob remains: the fresh snapshot, stored at the head's
	// own address (identity preserved down to the file name).
	files := snapshotFiles(t, dir)
	if len(files) != 1 || !files[head+snapExt] {
		t.Fatalf("post-compaction blobs %v, want only %s", files, head+snapExt)
	}
	// And it verifies + materializes identically to the chain.
	if _, err := c.Verify("m"); err != nil {
		t.Fatalf("compacted snapshot fails verification: %v", err)
	}
	ld, err := c.Load("m")
	if err != nil {
		t.Fatal(err)
	}
	if ld.Header.SHAHex() != head {
		t.Fatalf("compacted load head %s, want %s", ld.Header.SHAHex(), head)
	}

	// Compacting a chain-free dataset is a no-op, not an error.
	if _, again, err := c.Compact("m"); err != nil || again {
		t.Fatalf("second compact: compacted=%v err=%v, want no-op", again, err)
	}
}

func TestBackgroundCompactionKicksInPastThreshold(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{CompactAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if _, err := c.IngestGraph("m", mustGen(t, "mesh:8", 1), FormatBinary, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AppendDelta("m", growDelta(), ""); err != nil {
		t.Fatal(err)
	}
	res, err := c.AppendDelta("m", &EdgeDelta{Ins: []DeltaIns{{U: 2, V: 61, W: 0.5}}}, "")
	if err != nil {
		t.Fatal(err)
	}
	c.compactWG.Wait()
	in, err := c.Info("m")
	if err != nil {
		t.Fatal(err)
	}
	if in.ChainLen() != 0 {
		t.Fatalf("chain length %d after threshold append, want background compaction to 0", in.ChainLen())
	}
	if in.SHA256 != res.Info.SHA256 {
		t.Fatalf("background compaction moved the head: %s -> %s", res.Info.SHA256, in.SHA256)
	}
}

func TestAppendBudgetMustFitWholeLineage(t *testing.T) {
	// Learn the base snapshot size first.
	probe := lineageCatalog(t, t.TempDir(), Options{})
	pin, err := probe.IngestGraph("p", mustGen(t, "mesh:8", 1), FormatBinary, "")
	if err != nil {
		t.Fatal(err)
	}

	c := lineageCatalog(t, t.TempDir(), Options{ByteBudget: pin.Bytes})
	if _, err := c.IngestGraph("m", mustGen(t, "mesh:8", 1), FormatBinary, ""); err != nil {
		t.Fatal(err)
	}
	// The grown lineage would exceed the budget, and an append must not
	// evict its own dataset to make room — refuse outright.
	if _, err := c.AppendDelta("m", growDelta(), ""); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-budget append err = %v, want ErrBudgetExceeded", err)
	}
	// The failed append left no trace.
	in, err := c.Info("m")
	if err != nil {
		t.Fatal(err)
	}
	if in.ChainLen() != 0 || in.Bytes != pin.Bytes {
		t.Fatalf("failed append left residue: %+v", in)
	}
}

func TestAppendErrorClassification(t *testing.T) {
	c := lineageCatalog(t, t.TempDir(), Options{})
	if _, err := c.AppendDelta("ghost", growDelta(), ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("append to missing dataset: %v, want ErrNotFound", err)
	}
	var bi *BadInputError
	if _, err := c.AppendDelta("..evil", growDelta(), ""); !errors.As(err, &bi) {
		t.Fatalf("append with bad name: %v, want BadInputError", err)
	}
	if _, err := c.IngestGraph("m", mustGen(t, "mesh:4", 1), FormatBinary, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AppendDelta("m", &EdgeDelta{Ins: []DeltaIns{{U: 1, V: 1, W: 1}}}, ""); !errors.As(err, &bi) {
		t.Fatalf("self-loop delta: %v, want BadInputError", err)
	}
}

// TestSweepQuarantinesCorruptDeltaFrame extends the integrity sweeper's
// contract to the dynamic half of the blob tier: a bit-rotted delta
// frame quarantines the lineage that depends on it, and healthy
// siblings keep serving.
func TestSweepQuarantinesCorruptDeltaFrame(t *testing.T) {
	dir := t.TempDir()
	c := lineageCatalog(t, dir, Options{})
	if _, err := c.IngestGraph("dyn", mustGen(t, "mesh:8", 1), FormatBinary, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestGraph("static", mustGen(t, "mesh:9", 1), FormatBinary, ""); err != nil {
		t.Fatal(err)
	}
	res, err := c.AppendDelta("dyn", growDelta(), "")
	if err != nil {
		t.Fatal(err)
	}
	dsha := res.Info.Deltas[0].SHA256

	// Flip one record byte in the delta frame on disk.
	path := filepath.Join(dir, snapshotsDir, dsha+snapExt)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	failures := 0
	for _, sr := range c.SweepOnce() {
		if !sr.OK && !sr.Skipped {
			failures++
			if sr.SHA256 != dsha {
				t.Fatalf("sweep condemned %s, want the corrupt delta %s", sr.SHA256, dsha)
			}
		}
	}
	if failures != 1 {
		t.Fatalf("sweep found %d failures, want 1", failures)
	}
	if _, err := c.Info("dyn"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lineage with corrupt frame still cataloged: %v", err)
	}
	if _, err := c.Load("static"); err != nil {
		t.Fatalf("healthy sibling lost: %v", err)
	}
}
