package dataset

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"

	"graphdiam/internal/gio"
	"graphdiam/internal/graph"
)

// Graph interchange formats the ingestion pipeline understands. "auto"
// (or "") sniffs the stream; each format is also accepted gzip-wrapped.
const (
	FormatAuto     = "auto"
	FormatEdgeList = "edgelist"
	FormatDIMACS   = "dimacs"
	FormatMETIS    = "metis"
	FormatBinary   = "binary"
)

// Ingest streams r through the format decoder into a CSR snapshot under
// name. The text never becomes resident as a whole: gio's readers consume
// the stream line by line (or record by record) straight into the graph
// builder, so peak memory is the CSR form plus an O(1) window of text —
// never both full forms at once. format may be one of the Format
// constants or ""/auto to sniff; gzip wrapping is detected either way.
func (c *Catalog) Ingest(name string, r io.Reader, format, source string) (Info, error) {
	// Reject bad names before paying for the decode — a multi-gigabyte
	// stream should not parse to completion only to fail on the name.
	if !nameRE.MatchString(name) {
		return Info{}, fmt.Errorf("dataset: invalid name %q (want %s)", name, nameRE)
	}
	g, format, err := DecodeStream(r, format)
	if err != nil {
		return Info{}, err
	}
	return c.IngestGraph(name, g, format, source)
}

// DecodeStream decodes one graph from r in the named (or sniffed) format,
// transparently unwrapping gzip, and reports the format actually used.
func DecodeStream(r io.Reader, format string) (*graph.Graph, string, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, _ := br.Peek(512)

	var rd io.Reader = br
	if isGzipMagic(head) {
		// Classify on a best-effort decompression of the peeked prefix,
		// then hand the (still unconsumed) stream to the decoder through
		// a fresh gzip reader.
		head = gunzipPrefix(head)
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, "", fmt.Errorf("dataset: gzip input: %w", err)
		}
		defer zr.Close()
		rd = zr
	}

	switch strings.ToLower(format) {
	case "", FormatAuto:
		format = ClassifyFormat(head)
	case FormatEdgeList, FormatDIMACS, FormatMETIS, FormatBinary:
		format = strings.ToLower(format)
	default:
		return nil, "", fmt.Errorf("dataset: unknown format %q (want auto, edgelist, dimacs, metis, or binary)", format)
	}

	var (
		g   *graph.Graph
		err error
	)
	switch format {
	case FormatEdgeList:
		g, err = gio.ReadEdgeList(rd)
	case FormatDIMACS:
		g, err = gio.ReadDIMACS(rd)
	case FormatMETIS:
		g, err = gio.ReadMETIS(rd)
	case FormatBinary:
		g, err = gio.ReadBinary(rd)
	}
	if err != nil {
		return nil, "", err
	}
	return g, format, nil
}

func isGzipMagic(b []byte) bool {
	return len(b) >= 2 && b[0] == 0x1f && b[1] == 0x8b
}

// gunzipPrefix best-effort decompresses a raw prefix of a gzip stream so
// the classifier can see plaintext. Truncation errors are expected and
// ignored — whatever decompressed is enough to sniff a format.
func gunzipPrefix(raw []byte) []byte {
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil
	}
	defer zr.Close()
	out := make([]byte, 512)
	n, _ := io.ReadFull(zr, out)
	return out[:n]
}

// gioBinaryMagic is the first 8 bytes of gio's binary format: the "GDM1"
// magic written as a little-endian uint64.
var gioBinaryMagic = []byte{0x31, 0x4d, 0x44, 0x47, 0, 0, 0, 0}

// ClassifyFormat sniffs a plaintext (already gunzipped) head:
//
//   - gio binary magic            → binary
//   - first line "c …" or "p sp…" → dimacs
//   - '%' comment leader          → metis
//   - everything else             → edgelist ('#' comments, "u v w" rows)
//
// A headerless METIS file whose first line is bare integers is
// indistinguishable from an edge list; pass format=metis explicitly for
// those.
func ClassifyFormat(head []byte) string {
	if bytes.HasPrefix(head, gioBinaryMagic) {
		return FormatBinary
	}
	for _, line := range strings.Split(string(head), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "c ") || line == "c" || strings.HasPrefix(line, "p "):
			return FormatDIMACS
		case strings.HasPrefix(line, "%"):
			return FormatMETIS
		default:
			return FormatEdgeList
		}
	}
	return FormatEdgeList
}

// IngestFile is the path-based convenience over Ingest used by the CLI
// and -preload: opens path and streams it in.
func (c *Catalog) IngestFile(name, path, format, source string) (Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return Info{}, err
	}
	defer f.Close()
	if source == "" {
		source = "file " + path
	}
	return c.Ingest(name, f, format, source)
}
