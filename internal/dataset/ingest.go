package dataset

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"

	"graphdiam/internal/gio"
	"graphdiam/internal/graph"
)

// Graph interchange formats the ingestion pipeline understands. "auto"
// (or "") sniffs the stream; each format is also accepted gzip-wrapped.
const (
	FormatAuto     = "auto"
	FormatEdgeList = "edgelist"
	FormatDIMACS   = "dimacs"
	FormatMETIS    = "metis"
	FormatBinary   = "binary"
)

// sniffLen is how many raw bytes the format classifier peeks at.
const sniffLen = 512

// BadInputError marks an ingest failure attributable to the client's
// bytes or parameters — a malformed name, an undecodable stream, a gzip
// integrity failure — as opposed to a server-side fault (disk full,
// fsync error, backend down). The HTTP layer maps it to 400 and
// everything unclassified to 500, so clients can tell "fix your upload"
// from "the daemon is hurting".
type BadInputError struct{ Err error }

func (e *BadInputError) Error() string { return e.Err.Error() }
func (e *BadInputError) Unwrap() error { return e.Err }

// badInput wraps err unless it already is (or carries) a BadInputError.
func badInput(err error) error {
	return &BadInputError{Err: err}
}

// Ingest streams r through the format decoder into a CSR snapshot under
// name. The text never becomes resident as a whole: gio's readers consume
// the stream line by line (or record by record) straight into the graph
// builder, so peak memory is the CSR form plus an O(1) window of text —
// never both full forms at once. format may be one of the Format
// constants or ""/auto to sniff; gzip wrapping is detected either way.
func (c *Catalog) Ingest(name string, r io.Reader, format, source string) (Info, error) {
	// Reject bad names before paying for the decode — a multi-gigabyte
	// stream should not parse to completion only to fail on the name.
	if !nameRE.MatchString(name) {
		return Info{}, badInput(fmt.Errorf("dataset: invalid name %q (want %s)", name, nameRE))
	}
	g, format, err := DecodeStream(r, format)
	if err != nil {
		return Info{}, err
	}
	return c.IngestGraph(name, g, format, source)
}

// DecodeStream decodes one graph from r in the named (or sniffed) format,
// transparently unwrapping gzip, and reports the format actually used.
// Gzip input is verified to its trailer: after the decoder finishes, the
// remaining compressed stream is drained so the CRC-32 and length in the
// gzip trailer are checked even for decoders that stop at their logical
// end (the binary format reads an exact byte count), and a mismatch
// fails the ingest instead of admitting silently corrupted bytes.
// Decode-level failures are wrapped in BadInputError.
func DecodeStream(r io.Reader, format string) (*graph.Graph, string, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, _ := br.Peek(sniffLen)
	// A full peek means the stream continues past what we can see, so
	// the head may end mid-line; the classifier must not trust its tail.
	truncated := len(head) == sniffLen

	var rd io.Reader = br
	var zr *gzip.Reader
	if isGzipMagic(head) {
		// Classify on a best-effort decompression of the peeked prefix,
		// then hand the (still unconsumed) stream to the decoder through
		// a fresh gzip reader.
		head, truncated = gunzipPrefix(head, truncated)
		var err error
		if zr, err = gzip.NewReader(br); err != nil {
			return nil, "", badInput(fmt.Errorf("dataset: gzip input: %w", err))
		}
		defer zr.Close()
		rd = zr
	}

	switch strings.ToLower(format) {
	case "", FormatAuto:
		var err error
		if format, err = ClassifyFormat(head, truncated); err != nil {
			return nil, "", badInput(err)
		}
	case FormatEdgeList, FormatDIMACS, FormatMETIS, FormatBinary:
		format = strings.ToLower(format)
	default:
		return nil, "", badInput(fmt.Errorf("dataset: unknown format %q (want auto, edgelist, dimacs, metis, or binary)", format))
	}

	var (
		g   *graph.Graph
		err error
	)
	switch format {
	case FormatEdgeList:
		g, err = gio.ReadEdgeList(rd)
	case FormatDIMACS:
		g, err = gio.ReadDIMACS(rd)
	case FormatMETIS:
		g, err = gio.ReadMETIS(rd)
	case FormatBinary:
		g, err = gio.ReadBinary(rd)
	}
	if err != nil {
		return nil, "", badInput(err)
	}
	if zr != nil {
		// Drain to the gzip trailer. compress/gzip verifies the CRC-32
		// and uncompressed length only when a read reaches the logical
		// end of the member; a decoder that stopped early (binary reads
		// its declared byte count and no more) would otherwise skip the
		// check entirely and a flipped bit in the payload would ingest
		// as a healthy graph.
		if _, derr := io.Copy(io.Discard, zr); derr != nil {
			return nil, "", badInput(fmt.Errorf("dataset: gzip integrity: %w", derr))
		}
		if cerr := zr.Close(); cerr != nil {
			return nil, "", badInput(fmt.Errorf("dataset: gzip integrity: %w", cerr))
		}
	}
	return g, format, nil
}

func isGzipMagic(b []byte) bool {
	return len(b) >= 2 && b[0] == 0x1f && b[1] == 0x8b
}

// gunzipPrefix best-effort decompresses a raw prefix of a gzip stream so
// the classifier can see plaintext. Truncation errors are expected and
// ignored — whatever decompressed is enough to sniff a format. The
// returned flag reports whether the plaintext may be cut short: always
// when the raw prefix was itself truncated, and additionally when the
// decompressed text outgrew the sniff window.
func gunzipPrefix(raw []byte, rawTruncated bool) ([]byte, bool) {
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil, true
	}
	defer zr.Close()
	out := make([]byte, sniffLen+1)
	n, _ := io.ReadFull(zr, out)
	truncated := rawTruncated || n > sniffLen
	if n > sniffLen {
		n = sniffLen
	}
	return out[:n], truncated
}

// gioBinaryMagic is the first 8 bytes of gio's binary format: the "GDM1"
// magic written as a little-endian uint64.
var gioBinaryMagic = []byte{0x31, 0x4d, 0x44, 0x47, 0, 0, 0, 0}

// ClassifyFormat sniffs a plaintext (already gunzipped) head:
//
//   - gio binary magic            → binary
//   - first line "c …" or "p sp…" → dimacs
//   - '%' comment leader          → metis
//   - everything else             → edgelist ('#' comments, "u v w" rows)
//
// truncated reports that head may end mid-line (the sniff window filled
// before the stream ended); the trailing partial line is then discarded
// before classifying — a cut token must never decide the format — and a
// head with no complete line at all is an error directing the caller to
// pass an explicit format rather than a silent misclassification.
//
// A headerless METIS file whose first line is bare integers is
// indistinguishable from an edge list; pass format=metis explicitly for
// those.
func ClassifyFormat(head []byte, truncated bool) (string, error) {
	if bytes.HasPrefix(head, gioBinaryMagic) {
		return FormatBinary, nil
	}
	if truncated {
		if i := bytes.LastIndexByte(head, '\n'); i >= 0 {
			head = head[:i+1]
		} else {
			head = nil
		}
	}
	for _, line := range strings.Split(string(head), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "c ") || line == "c" || strings.HasPrefix(line, "p "):
			return FormatDIMACS, nil
		case strings.HasPrefix(line, "%"):
			return FormatMETIS, nil
		default:
			return FormatEdgeList, nil
		}
	}
	if truncated {
		return "", fmt.Errorf("dataset: cannot sniff the format (no complete line within the first %d bytes); pass an explicit format", sniffLen)
	}
	return FormatEdgeList, nil
}

// IngestFile is the path-based convenience over Ingest used by the CLI
// and -preload: opens path and streams it in.
func (c *Catalog) IngestFile(name, path, format, source string) (Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return Info{}, err
	}
	defer f.Close()
	if source == "" {
		source = "file " + path
	}
	return c.Ingest(name, f, format, source)
}
