//go:build unix

package dataset

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported reports whether this platform has a zero-copy load path.
const mmapSupported = true

// mmapFile maps size bytes of f read-only. The mapping survives a later
// unlink of the file (the catalog relies on this: evicting or removing a
// snapshot never invalidates graphs already served from it).
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping returned by mmapFile.
func munmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}

// lockDir takes a non-blocking exclusive flock on dir/.lock so only one
// process mutates a catalog at a time. The returned file keeps the lock
// alive; unlockDir releases it.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(dir+"/.lock", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("dataset: catalog %s is in use by another process (flock: %w)", dir, err)
	}
	return f, nil
}

func unlockDir(f *os.File) {
	if f != nil {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}
}
