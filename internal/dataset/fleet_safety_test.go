package dataset

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// TestHubRestartPreservesPeerUploadedBlobs pins the fleet-safety
// property of the orphan GC: a blob a peer published through the hub's
// /v2/blobs (whose name lives only in the peer's manifest) is pinned on
// upload and must survive the hub's boot-time garbage collection, which
// would otherwise see it as unreferenced and delete the fleet's only
// copy.
func TestHubRestartPreservesPeerUploadedBlobs(t *testing.T) {
	dir := t.TempDir()
	hub, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The hub has a dataset of its own, so recovery has real work to do.
	if _, err := hub.IngestGraph("own", mustGen(t, "mesh:8", 1), FormatBinary, ""); err != nil {
		t.Fatal(err)
	}

	// A peer uploads a blob through the hub's served tier.
	sha, raw := snapshotBlob(t, t.TempDir(), "mesh:14", 9)
	ts := httptest.NewServer(http.StripPrefix("/v2/blobs", BlobServer(hub.Blobs(), nil)))
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v2/blobs/"+sha, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ts.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("peer upload status %d", resp.StatusCode)
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}

	// Hub restart: recovery GC runs; the pinned peer blob must survive.
	hub2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer hub2.Close()
	p, err := hub2.Blobs().Fetch(sha)
	if err != nil {
		t.Fatalf("peer-uploaded blob garbage-collected on hub restart: %v", err)
	}
	if got, _ := os.ReadFile(p); !bytes.Equal(got, raw) {
		t.Fatal("peer blob bytes changed across restart")
	}
	if _, err := hub2.Load("own"); err != nil {
		t.Fatalf("hub's own dataset lost: %v", err)
	}

	// An explicit tier-level delete is the operator overriding the
	// protection: it unpins, and the next restart's GC stays clean.
	if err := hub2.Blobs().Delete(sha); err != nil {
		t.Fatal(err)
	}
	if _, err := hub2.Blobs().Fetch(sha); !errors.Is(err, ErrBlobNotFound) {
		t.Fatalf("blob present after explicit delete: %v", err)
	}
	if ls, ok := hub2.Blobs().(*LocalStore); ok && len(ls.PinnedBlobs()) != 0 {
		t.Fatalf("pins left behind after delete: %v", ls.PinnedBlobs())
	}
}

// TestRemoveSparesBlobBeingPublished pins the ingest/remove race guard:
// while an ingest has published a blob but not yet inserted its manifest
// entry, removing another name that shares the content address must not
// delete the blob out from under the in-flight ingest.
func TestRemoveSparesBlobBeingPublished(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g := mustGen(t, "mesh:9", 2)
	in, err := c.IngestGraph("first", g, FormatBinary, "")
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a second ingest of identical content caught between
	// putBlobFile and its manifest insert.
	c.mu.Lock()
	c.publishing[in.SHA256]++
	c.mu.Unlock()

	if err := c.Remove("first"); err != nil {
		t.Fatal(err)
	}
	blobPath := filepath.Join(dir, snapshotsDir, in.SHA256+snapExt)
	if _, err := os.Stat(blobPath); err != nil {
		t.Fatalf("blob deleted while a publish was in flight: %v", err)
	}

	// The in-flight ingest completes; its dataset must be loadable.
	c.mu.Lock()
	c.publishing[in.SHA256]--
	delete(c.publishing, in.SHA256)
	c.mu.Unlock()
	if _, err := c.IngestGraph("second", g, FormatBinary, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load("second"); err != nil {
		t.Fatalf("dataset broken after racing remove: %v", err)
	}

	// With no publish in flight and no references, removal deletes.
	if err := c.Remove("second"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(blobPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("unreferenced blob survived")
	}
}

// TestRemoteTierGapKeepsEntries pins the not-found/unavailable split for
// shared tiers: a blob missing from the tier (hub lost it, re-upload
// pending) must not make boot recovery or the sweeper drop the entry —
// queries 404 until the tier heals, then everything works again.
func TestRemoteTierGapKeepsEntries(t *testing.T) {
	tier, err := NewLocalStore(filepath.Join(t.TempDir(), "tier"))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.StripPrefix("/v2/blobs", BlobServer(tier, nil)))
	defer ts.Close()

	dirB := t.TempDir()
	cacheB := filepath.Join(dirB, "cache")
	openB := func() *Catalog {
		rs, err := NewRemoteStore(ts.URL, cacheB, nil)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Open(dirB, Options{Blobs: rs})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	c := openB()
	g := mustGen(t, "mesh:10", 3)
	in, err := c.IngestGraph("gapped", g, FormatBinary, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The tier loses the blob; B's cache copy evaporates too.
	if err := tier.Delete(in.SHA256); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(cacheB, in.SHA256+snapExt))

	c2 := openB()
	defer c2.Close()
	if _, err := c2.Info("gapped"); err != nil {
		t.Fatalf("boot dropped the entry over a tier gap: %v", err)
	}
	if _, err := c2.Load("gapped"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("load during tier gap: %v, want ErrNotFound", err)
	}
	// The sweeper skips — it must not condemn.
	for _, res := range c2.SweepOnce() {
		if !res.Skipped {
			t.Fatalf("sweep during tier gap: %+v, want skipped", res)
		}
	}
	if st := c2.SweepStatus(); st.TotalQuarantined != 0 || st.LastSkipped != 1 {
		t.Fatalf("sweep status during gap: %+v", st)
	}
	if _, err := c2.Info("gapped"); err != nil {
		t.Fatalf("sweep dropped the entry over a tier gap: %v", err)
	}

	// The tier heals (re-upload of the identical snapshot); the same
	// entry serves again with no manifest surgery.
	reup := filepath.Join(t.TempDir(), "reup.gds")
	h, err := WriteSnapshot(reup, g)
	if err != nil {
		t.Fatal(err)
	}
	if h.SHAHex() != in.SHA256 {
		t.Fatalf("re-snapshot address %s != original %s", ShortSHA(h.SHAHex()), ShortSHA(in.SHA256))
	}
	f, err := os.Open(reup)
	if err != nil {
		t.Fatal(err)
	}
	err = tier.Put(in.SHA256, f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	ld, err := c2.Load("gapped")
	if err != nil {
		t.Fatalf("load after tier healed: %v", err)
	}
	requireIdentical(t, g, ld.Graph)
}

// TestVerifyResolvesRemoteNames: `dataset -remote URL verify NAME` must
// audit a dataset this node has never ingested — the record adopts from
// the peer and the blob downloads through the admission check before the
// deep verification runs.
func TestVerifyResolvesRemoteNames(t *testing.T) {
	tierDir := t.TempDir()
	tier, err := Open(tierDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	g := mustGen(t, "mesh:11", 5)
	in, err := tier.IngestGraph("published", g, FormatBinary, "")
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/v2/blobs/", http.StripPrefix("/v2/blobs", BlobServer(tier.Blobs(), tier.ReferencesBlob)))
	mux.HandleFunc("/v2/datasets/published", func(w http.ResponseWriter, _ *http.Request) {
		rec, err := tier.Info("published")
		if err != nil {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSONBody(w, rec)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	dirB := t.TempDir()
	rs, err := NewRemoteStore(ts.URL, filepath.Join(dirB, "cache"), nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(dirB, Options{Blobs: rs})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Verify("published")
	if err != nil {
		t.Fatalf("verify of a peer-only dataset: %v", err)
	}
	if got.SHA256 != in.SHA256 {
		t.Fatalf("verified sha %s != ingested %s", ShortSHA(got.SHA256), ShortSHA(in.SHA256))
	}
	if _, err := c.Verify("neverexisted"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("verify of unknown name: %v, want ErrNotFound", err)
	}
}

// writeJSONBody is a tiny test helper (the dataset package has no JSON
// response plumbing of its own).
func writeJSONBody(w http.ResponseWriter, v any) {
	b, _ := json.Marshal(v)
	w.Write(b)
}

// TestAdoptionRespectsByteBudget: a peer record whose snapshot cannot
// fit the local budget is refused with the same typed error a local
// over-budget ingest gets — never adopted, never downloaded.
func TestAdoptionRespectsByteBudget(t *testing.T) {
	tier, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	in, err := tier.IngestGraph("huge", mustGen(t, "mesh:12", 6), FormatBinary, "")
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/v2/blobs/", http.StripPrefix("/v2/blobs", BlobServer(tier.Blobs(), tier.ReferencesBlob)))
	mux.HandleFunc("/v2/datasets/huge", func(w http.ResponseWriter, _ *http.Request) {
		rec, _ := tier.Info("huge")
		writeJSONBody(w, rec)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	dirB := t.TempDir()
	cacheB := filepath.Join(dirB, "cache")
	rs, err := NewRemoteStore(ts.URL, cacheB, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(dirB, Options{Blobs: rs, ByteBudget: in.Bytes - 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Load("huge"); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-budget adoption: %v, want ErrBudgetExceeded", err)
	}
	if _, err := c.Info("huge"); !errors.Is(err, ErrNotFound) {
		t.Fatal("over-budget record was adopted into the manifest")
	}
	if _, err := os.Stat(filepath.Join(cacheB, in.SHA256+snapExt)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("over-budget blob was downloaded anyway")
	}
}
