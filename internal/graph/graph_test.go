package graph

import (
	"math"
	"testing"
	"testing/quick"

	"graphdiam/internal/rng"
)

// triangle returns the 3-cycle 0-1-2 with weights 1, 2, 3.
func triangle() *Graph {
	b := NewBuilder(3, 3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 0, 3)
	return b.Build()
}

func TestBasicShape(t *testing.T) {
	g := triangle()
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	for u := NodeID(0); u < 3; u++ {
		if g.Degree(u) != 2 {
			t.Fatalf("Degree(%d) = %d, want 2", u, g.Degree(u))
		}
	}
}

func TestNeighborsSortedAndSymmetric(t *testing.T) {
	g := triangle()
	for u := NodeID(0); u < 3; u++ {
		ts, ws := g.Neighbors(u)
		if len(ts) != len(ws) {
			t.Fatal("target/weight slices differ in length")
		}
		for i := 1; i < len(ts); i++ {
			if ts[i-1] >= ts[i] {
				t.Fatalf("adjacency of %d not strictly sorted: %v", u, ts)
			}
		}
		for i, v := range ts {
			w2, ok := g.EdgeWeight(v, u)
			if !ok || w2 != ws[i] {
				t.Fatalf("edge (%d,%d) asymmetric: %v vs (%v,%v)", u, v, ws[i], w2, ok)
			}
		}
	}
}

func TestEdgeWeight(t *testing.T) {
	g := triangle()
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 1 {
		t.Fatalf("EdgeWeight(0,1) = %v,%v", w, ok)
	}
	if w, ok := g.EdgeWeight(2, 1); !ok || w != 2 {
		t.Fatalf("EdgeWeight(2,1) = %v,%v", w, ok)
	}
	if _, ok := g.EdgeWeight(0, 0); ok {
		t.Fatal("self edge should not exist")
	}
	if g.HasEdge(0, 2) != true {
		t.Fatal("HasEdge(0,2) false")
	}
}

func TestSelfLoopsDropped(t *testing.T) {
	b := NewBuilder(2, 2)
	b.AddEdge(0, 0, 5)
	b.AddEdge(0, 1, 1)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (self-loop dropped)", g.NumEdges())
	}
}

func TestParallelEdgesKeepMin(t *testing.T) {
	b := NewBuilder(2, 3)
	b.AddEdge(0, 1, 5)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 0, 9)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if w, _ := g.EdgeWeight(0, 1); w != 2 {
		t.Fatalf("kept weight %v, want min 2", w)
	}
}

func TestInvalidWeightPanics(t *testing.T) {
	for _, w := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weight %v did not panic", w)
				}
			}()
			b := NewBuilder(2, 1)
			b.AddEdge(0, 1, w)
		}()
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	b := NewBuilder(2, 1)
	b.AddEdge(0, 2, 1)
}

func TestForEachEdgeVisitsOncePerEdge(t *testing.T) {
	g := triangle()
	count := 0
	sum := 0.0
	g.ForEachEdge(func(u, v NodeID, w float64) {
		if u >= v {
			t.Fatalf("ForEachEdge order violated: %d >= %d", u, v)
		}
		count++
		sum += w
	})
	if count != 3 || sum != 6 {
		t.Fatalf("count=%d sum=%v, want 3 and 6", count, sum)
	}
}

func TestStats(t *testing.T) {
	g := triangle()
	s := g.Stats()
	if s.NumNodes != 3 || s.NumEdges != 3 {
		t.Fatalf("stats shape: %+v", s)
	}
	if s.MinWeight != 1 || s.MaxWeight != 3 {
		t.Fatalf("min/max: %+v", s)
	}
	if math.Abs(s.AvgWeight-2) > 1e-12 {
		t.Fatalf("avg: %v", s.AvgWeight)
	}
	if s.MaxDegree != 2 {
		t.Fatalf("max degree: %d", s.MaxDegree)
	}
	if triangle().AvgEdgeWeight() != s.AvgWeight {
		t.Fatal("AvgEdgeWeight disagrees with Stats")
	}
	if triangle().MinEdgeWeight() != 1 || triangle().MaxEdgeWeight() != 3 {
		t.Fatal("Min/MaxEdgeWeight mismatch")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(5, 0).Build()
	if g.NumNodes() != 5 || g.NumEdges() != 0 {
		t.Fatalf("empty graph shape: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	s := g.Stats()
	if s.MinWeight != 0 || s.MaxWeight != 0 || s.AvgWeight != 0 {
		t.Fatalf("empty stats: %+v", s)
	}
	if !math.IsInf(g.MinEdgeWeight(), 1) {
		t.Fatal("MinEdgeWeight of edgeless graph should be +Inf")
	}
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(3, []NodeID{0, 1}, []NodeID{1, 2}, []float64{1, 2})
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched slices did not panic")
		}
	}()
	FromEdges(3, []NodeID{0}, []NodeID{1, 2}, []float64{1})
}

func TestBuilderReuse(t *testing.T) {
	b := NewBuilder(3, 2)
	b.AddEdge(0, 1, 1)
	g1 := b.Build()
	b.AddEdge(1, 2, 1)
	g2 := b.Build()
	if g1.NumEdges() != 1 || g2.NumEdges() != 1 {
		t.Fatalf("builder reuse leaked edges: %d, %d", g1.NumEdges(), g2.NumEdges())
	}
	if !g2.HasEdge(1, 2) || g2.HasEdge(0, 1) {
		t.Fatal("second build contains wrong edges")
	}
}

func TestReweightUniformPreservesTopology(t *testing.T) {
	g := triangle()
	r := rng.New(1)
	h := g.ReweightUniform(r.Float64Open)
	if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
		t.Fatal("reweight changed topology")
	}
	h.ForEachEdge(func(u, v NodeID, w float64) {
		if !g.HasEdge(u, v) {
			t.Fatalf("edge (%d,%d) not in original", u, v)
		}
		if w <= 0 || w > 1 {
			t.Fatalf("weight %v outside (0,1]", w)
		}
	})
}

func TestSubgraph(t *testing.T) {
	// Path 0-1-2-3 plus edge 0-3.
	b := NewBuilder(4, 4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 3, 3)
	b.AddEdge(0, 3, 4)
	g := b.Build()
	sub, orig := g.Subgraph([]NodeID{1, 3, 2, 3}) // dup 3 on purpose
	if sub.NumNodes() != 3 {
		t.Fatalf("sub nodes = %d, want 3", sub.NumNodes())
	}
	if len(orig) != 3 || orig[0] != 1 || orig[1] != 2 || orig[2] != 3 {
		t.Fatalf("orig map = %v", orig)
	}
	// Edges within {1,2,3}: 1-2 (w 2), 2-3 (w 3).
	if sub.NumEdges() != 2 {
		t.Fatalf("sub edges = %d, want 2", sub.NumEdges())
	}
	if w, ok := sub.EdgeWeight(0, 1); !ok || w != 2 {
		t.Fatalf("sub edge (0,1): %v %v", w, ok)
	}
	if w, ok := sub.EdgeWeight(1, 2); !ok || w != 3 {
		t.Fatalf("sub edge (1,2): %v %v", w, ok)
	}
}

// Property: building from a random edge multiset yields a graph whose
// degree sum equals twice the edge count, all adjacencies sorted, and every
// stored weight is the minimum over the parallel class.
func TestBuildProperties(t *testing.T) {
	check := func(seed uint64, nEdges uint8) bool {
		r := rng.New(seed)
		const n = 16
		type key struct{ u, v NodeID }
		min := map[key]float64{}
		b := NewBuilder(n, int(nEdges))
		for i := 0; i < int(nEdges); i++ {
			u := NodeID(r.Intn(n))
			v := NodeID(r.Intn(n))
			w := r.Float64() + 0.001
			b.AddEdge(u, v, w)
			if u == v {
				continue
			}
			k := key{u, v}
			if u > v {
				k = key{v, u}
			}
			if old, ok := min[k]; !ok || w < old {
				min[k] = w
			}
		}
		g := b.Build()
		if g.NumEdges() != len(min) {
			return false
		}
		degSum := 0
		for u := 0; u < n; u++ {
			degSum += g.Degree(NodeID(u))
		}
		if degSum != 2*g.NumEdges() {
			return false
		}
		ok := true
		g.ForEachEdge(func(u, v NodeID, w float64) {
			if min[key{u, v}] != w {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	r := rng.New(2)
	const n, m = 1 << 14, 1 << 16
	us := make([]NodeID, m)
	vs := make([]NodeID, m)
	ws := make([]float64, m)
	for i := 0; i < m; i++ {
		us[i] = NodeID(r.Intn(n))
		vs[i] = NodeID(r.Intn(n))
		if us[i] == vs[i] {
			vs[i] = (vs[i] + 1) % n
		}
		ws[i] = r.Float64() + 0.01
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges(n, us, vs, ws)
	}
}

func BenchmarkNeighborScan(b *testing.B) {
	r := rng.New(3)
	const n, m = 1 << 14, 1 << 17
	bld := NewBuilder(n, m)
	for i := 0; i < m; i++ {
		u := NodeID(r.Intn(n))
		v := NodeID(r.Intn(n))
		if u != v {
			bld.AddEdge(u, v, 1)
		}
	}
	g := bld.Build()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for u := 0; u < n; u++ {
			_, ws := g.Neighbors(NodeID(u))
			for _, w := range ws {
				sink += w
			}
		}
	}
	_ = sink
}

func TestFromCSRRoundTrip(t *testing.T) {
	g := triangle()
	off, ts, ws := g.RawCSR()
	g2, err := FromCSR(off, ts, ws, g.Stats())
	if err != nil {
		t.Fatalf("FromCSR: %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch: %v vs %v", g2, g)
	}
	if g2.Stats() != g.Stats() {
		t.Fatalf("stats mismatch: %+v vs %+v", g2.Stats(), g.Stats())
	}
	var want, got [][3]float64
	g.ForEachEdge(func(u, v NodeID, w float64) { want = append(want, [3]float64{float64(u), float64(v), w}) })
	g2.ForEachEdge(func(u, v NodeID, w float64) { got = append(got, [3]float64{float64(u), float64(v), w}) })
	if len(want) != len(got) {
		t.Fatalf("edge count mismatch")
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("edge %d: %v vs %v", i, got[i], want[i])
		}
	}
	if err := g2.ValidateCSR(); err != nil {
		t.Fatalf("ValidateCSR on valid graph: %v", err)
	}
}

func TestFromCSRRejectsMalformedShapes(t *testing.T) {
	g := triangle()
	off, ts, ws := g.RawCSR()
	cases := []struct {
		name string
		fn   func() error
	}{
		{"empty offsets", func() error { _, err := FromCSR(nil, ts, ws, g.Stats()); return err }},
		{"length mismatch", func() error { _, err := FromCSR(off, ts, ws[:len(ws)-1], g.Stats()); return err }},
		{"bad first offset", func() error {
			bad := append([]int64{1}, off[1:]...)
			_, err := FromCSR(bad, ts, ws, g.Stats())
			return err
		}},
		{"bad last offset", func() error {
			bad := append(append([]int64{}, off[:len(off)-1]...), off[len(off)-1]+2)
			_, err := FromCSR(bad, ts, ws, g.Stats())
			return err
		}},
		{"stats mismatch", func() error {
			s := g.Stats()
			s.NumNodes++
			_, err := FromCSR(off, ts, ws, s)
			return err
		}},
	}
	for _, c := range cases {
		if c.fn() == nil {
			t.Errorf("%s: FromCSR accepted malformed input", c.name)
		}
	}
}

func TestValidateCSRCatchesCorruption(t *testing.T) {
	corrupt := func(mutate func(off []int64, ts []NodeID, ws []float64)) error {
		g := triangle()
		off, ts, ws := g.RawCSR()
		off2 := append([]int64{}, off...)
		ts2 := append([]NodeID{}, ts...)
		ws2 := append([]float64{}, ws...)
		mutate(off2, ts2, ws2)
		g2, err := FromCSR(off2, ts2, ws2, g.Stats())
		if err != nil {
			return err
		}
		return g2.ValidateCSR()
	}
	cases := map[string]func(off []int64, ts []NodeID, ws []float64){
		"target out of range": func(_ []int64, ts []NodeID, _ []float64) { ts[0] = 99 },
		"self-loop":           func(_ []int64, ts []NodeID, _ []float64) { ts[0] = 0 },
		"unsorted adjacency":  func(_ []int64, ts []NodeID, _ []float64) { ts[0], ts[1] = ts[1], ts[0] },
		"negative weight":     func(_ []int64, _ []NodeID, ws []float64) { ws[0] = -1 },
		"NaN weight":          func(_ []int64, _ []NodeID, ws []float64) { ws[0] = math.NaN() },
		"asymmetric weight":   func(_ []int64, _ []NodeID, ws []float64) { ws[0] *= 2 },
		"non-monotone offset": func(off []int64, _ []NodeID, _ []float64) { off[1], off[2] = off[2], off[1] },
	}
	for name, mutate := range cases {
		if corrupt(mutate) == nil {
			t.Errorf("%s: ValidateCSR accepted corrupt CSR", name)
		}
	}
}
