// Package graph provides the compact weighted undirected graph
// representation used throughout graphdiam.
//
// Graphs are stored in compressed sparse row (CSR) form: a node's incident
// edges occupy a contiguous slice of the target/weight arrays, indexed by a
// per-node offset table. Node IDs are dense uint32 values in [0, n). An
// undirected edge {u,v} is stored twice, once in each endpoint's adjacency
// list; NumEdges reports the number of undirected edges.
//
// The representation is immutable after construction. Use Builder to
// assemble a graph from an edge stream; the builder removes self-loops and
// collapses parallel edges keeping the minimum weight, matching the
// conventions of the paper (positive weights, simple graphs).
package graph

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// NodeID identifies a node. IDs are dense in [0, NumNodes).
type NodeID = uint32

// Graph is an immutable weighted undirected graph in CSR form.
type Graph struct {
	offsets []int64   // len n+1; adjacency of u is [offsets[u], offsets[u+1])
	targets []NodeID  // len 2m
	weights []float64 // len 2m, parallel to targets
	stats   Stats     // summary statistics, computed once in Build
}

// NumNodes returns the number of nodes n.
func (g *Graph) NumNodes() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges m.
func (g *Graph) NumEdges() int { return len(g.targets) / 2 }

// Degree returns the number of edges incident to u.
func (g *Graph) Degree(u NodeID) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// Neighbors returns the adjacency slices of u: parallel target and weight
// slices. The returned slices alias internal storage and must not be
// modified.
func (g *Graph) Neighbors(u NodeID) ([]NodeID, []float64) {
	lo, hi := g.offsets[u], g.offsets[u+1]
	return g.targets[lo:hi], g.weights[lo:hi]
}

// EdgeWeight returns the weight of edge {u,v} and whether it exists.
// Adjacency lists are sorted by target, so this is a binary search.
func (g *Graph) EdgeWeight(u, v NodeID) (float64, bool) {
	lo, hi := g.offsets[u], g.offsets[u+1]
	ts := g.targets[lo:hi]
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= v })
	if i < len(ts) && ts[i] == v {
		return g.weights[lo+int64(i)], true
	}
	return 0, false
}

// HasEdge reports whether edge {u,v} exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.EdgeWeight(u, v)
	return ok
}

// ForEachEdge calls fn once per undirected edge {u,v} with u < v.
func (g *Graph) ForEachEdge(fn func(u, v NodeID, w float64)) {
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		ts, ws := g.Neighbors(NodeID(u))
		for i, v := range ts {
			if NodeID(u) < v {
				fn(NodeID(u), v, ws[i])
			}
		}
	}
}

// Stats holds summary edge-weight statistics of a graph.
type Stats struct {
	NumNodes  int
	NumEdges  int
	MinWeight float64
	MaxWeight float64
	AvgWeight float64
	MaxDegree int
}

// Stats returns the summary statistics computed once during Build: callers
// on algorithm hot paths (Δ bucket sizing, Δ suggestion, futility bounds)
// read them in O(1) instead of rescanning all 2m edge slots.
func (g *Graph) Stats() Stats { return g.stats }

// computeStats fills the cached statistics; called once by Build.
func (g *Graph) computeStats() {
	s := Stats{
		NumNodes:  g.NumNodes(),
		NumEdges:  g.NumEdges(),
		MinWeight: math.Inf(1),
		MaxWeight: math.Inf(-1),
	}
	if len(g.weights) == 0 {
		s.MinWeight, s.MaxWeight = 0, 0
		g.stats = s
		return
	}
	sum := 0.0
	for _, w := range g.weights {
		if w < s.MinWeight {
			s.MinWeight = w
		}
		if w > s.MaxWeight {
			s.MaxWeight = w
		}
		sum += w
	}
	s.AvgWeight = sum / float64(len(g.weights))
	for u := 0; u < s.NumNodes; u++ {
		if d := g.Degree(NodeID(u)); d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	g.stats = s
}

// MinEdgeWeight returns the minimum edge weight, or +Inf for edgeless
// graphs. O(1): served from the statistics cached at construction.
func (g *Graph) MinEdgeWeight() float64 {
	if len(g.weights) == 0 {
		return math.Inf(1)
	}
	return g.stats.MinWeight
}

// MaxEdgeWeight returns the maximum edge weight, or 0 for edgeless graphs.
// O(1): served from the statistics cached at construction.
func (g *Graph) MaxEdgeWeight() float64 { return g.stats.MaxWeight }

// AvgEdgeWeight returns the mean edge weight, or 0 for edgeless graphs.
// This is the paper's recommended initial guess for the Δ parameter.
// O(1): served from the statistics cached at construction.
func (g *Graph) AvgEdgeWeight() float64 { return g.stats.AvgWeight }

// MaxDegree returns the maximum node degree, 0 for edgeless graphs. O(1).
func (g *Graph) MaxDegree() int { return g.stats.MaxDegree }

// RawCSR exposes the graph's CSR arrays: the n+1 offset table and the
// parallel target/weight arrays of length 2m. The slices alias internal
// storage and must not be modified. This is the serialization hook of
// internal/dataset's snapshot writer; algorithm code should keep using
// Neighbors/ForEachEdge.
func (g *Graph) RawCSR() (offsets []int64, targets []NodeID, weights []float64) {
	return g.offsets, g.targets, g.weights
}

// FromCSR wraps already-assembled CSR arrays in a Graph without copying
// them — the zero-copy entry point for snapshot loads, where the slices
// alias a read-only mmap region. stats must describe the arrays exactly
// (snapshot headers persist the Stats computed by Build, so loads skip the
// O(n+m) rescan).
//
// Only O(1) structural invariants are checked here; deep validation
// (offset monotonicity, target range, weight positivity, adjacency order)
// is the caller's job via ValidateCSR when the arrays come from an
// untrusted file. The arrays must follow Build's conventions: adjacency
// sorted by target, both directions of every undirected edge present, no
// self-loops or duplicates.
func FromCSR(offsets []int64, targets []NodeID, weights []float64, stats Stats) (*Graph, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("graph: FromCSR: empty offset table")
	}
	if len(targets) != len(weights) {
		return nil, fmt.Errorf("graph: FromCSR: %d targets vs %d weights", len(targets), len(weights))
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: FromCSR: offsets[0] = %d, want 0", offsets[0])
	}
	if last := offsets[len(offsets)-1]; last != int64(len(targets)) {
		return nil, fmt.Errorf("graph: FromCSR: offsets end at %d, want %d", last, len(targets))
	}
	if stats.NumNodes != len(offsets)-1 || stats.NumEdges != len(targets)/2 {
		return nil, fmt.Errorf("graph: FromCSR: stats describe n=%d m=%d, arrays hold n=%d m=%d",
			stats.NumNodes, stats.NumEdges, len(offsets)-1, len(targets)/2)
	}
	return &Graph{offsets: offsets, targets: targets, weights: weights, stats: stats}, nil
}

// ValidateCSR deep-checks the CSR invariants FromCSR assumes: monotone
// offsets, targets in range and strictly increasing per adjacency list
// (sorted, no duplicates, no self-loops), positive finite weights, and
// symmetric edges (both directions present with equal weight). O(n + m log d).
func (g *Graph) ValidateCSR() error {
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		if g.offsets[u] > g.offsets[u+1] {
			return fmt.Errorf("graph: offsets not monotone at node %d", u)
		}
	}
	for u := 0; u < n; u++ {
		ts, ws := g.Neighbors(NodeID(u))
		for i, v := range ts {
			if int(v) >= n {
				return fmt.Errorf("graph: node %d: target %d out of range n=%d", u, v, n)
			}
			if v == NodeID(u) {
				return fmt.Errorf("graph: node %d: self-loop", u)
			}
			if i > 0 && ts[i-1] >= v {
				return fmt.Errorf("graph: node %d: adjacency not strictly sorted at slot %d", u, i)
			}
			w := ws[i]
			if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
				return fmt.Errorf("graph: node %d: invalid weight %v on edge to %d", u, w, v)
			}
			if rw, ok := g.EdgeWeight(v, NodeID(u)); !ok || rw != w {
				return fmt.Errorf("graph: edge (%d,%d) not symmetric", u, v)
			}
		}
	}
	return nil
}

// ReweightUniform returns a copy of g whose edge weights are drawn i.i.d.
// from (0,1] using draw, which is called once per undirected edge. Both
// directions of an edge receive the same weight.
func (g *Graph) ReweightUniform(draw func() float64) *Graph {
	b := NewBuilder(g.NumNodes(), g.NumEdges())
	g.ForEachEdge(func(u, v NodeID, _ float64) {
		b.AddEdge(u, v, draw())
	})
	return b.Build()
}

// String implements fmt.Stringer with a short summary, not the full edge set.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.NumNodes(), g.NumEdges())
}

// edgeRec is a builder-side endpoint record: one per direction.
type edgeRec struct {
	u, v NodeID
	w    float64
}

// Builder accumulates edges and assembles an immutable CSR Graph.
// Builders are not safe for concurrent use.
type Builder struct {
	n     int
	edges []edgeRec
}

// NewBuilder returns a builder for a graph with n nodes, pre-sizing internal
// storage for edgeHint undirected edges (pass 0 if unknown).
func NewBuilder(n, edgeHint int) *Builder {
	return &Builder{n: n, edges: make([]edgeRec, 0, 2*edgeHint)}
}

// NumNodes returns the number of nodes the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// AddEdge records the undirected edge {u,v} with weight w. Self-loops are
// dropped. Non-positive and non-finite weights panic: the paper's model
// (and every algorithm here) requires positive finite weights.
func (b *Builder) AddEdge(u, v NodeID, w float64) {
	if int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, b.n))
	}
	if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: invalid weight %v on edge (%d,%d)", w, u, v))
	}
	if u == v {
		return
	}
	b.edges = append(b.edges, edgeRec{u, v, w}, edgeRec{v, u, w})
}

// Build assembles the CSR graph. Parallel edges are collapsed to the one of
// minimum weight. The builder can be reused afterwards (it is reset).
func (b *Builder) Build() *Graph {
	recs := b.edges
	// slices.SortFunc over the concrete record type: pdqsort without the
	// interface boxing and reflection-based swaps of sort.Slice.
	slices.SortFunc(recs, func(a, b edgeRec) int {
		if a.u != b.u {
			if a.u < b.u {
				return -1
			}
			return 1
		}
		if a.v != b.v {
			if a.v < b.v {
				return -1
			}
			return 1
		}
		switch {
		case a.w < b.w:
			return -1
		case a.w > b.w:
			return 1
		}
		return 0
	})
	// Deduplicate, keeping the minimum-weight record (first after sort).
	dedup := recs[:0]
	for i := range recs {
		if i > 0 && recs[i].u == recs[i-1].u && recs[i].v == recs[i-1].v {
			continue
		}
		dedup = append(dedup, recs[i])
	}
	g := &Graph{
		offsets: make([]int64, b.n+1),
		targets: make([]NodeID, len(dedup)),
		weights: make([]float64, len(dedup)),
	}
	for _, e := range dedup {
		g.offsets[e.u+1]++
	}
	for i := 1; i <= b.n; i++ {
		g.offsets[i] += g.offsets[i-1]
	}
	cursor := make([]int64, b.n)
	copy(cursor, g.offsets[:b.n])
	for _, e := range dedup {
		p := cursor[e.u]
		g.targets[p] = e.v
		g.weights[p] = e.w
		cursor[e.u]++
	}
	b.edges = b.edges[:0]
	g.computeStats()
	return g
}

// FromEdges builds a graph directly from parallel edge slices.
func FromEdges(n int, us, vs []NodeID, ws []float64) *Graph {
	if len(us) != len(vs) || len(us) != len(ws) {
		panic("graph: FromEdges slice lengths differ")
	}
	b := NewBuilder(n, len(us))
	for i := range us {
		b.AddEdge(us[i], vs[i], ws[i])
	}
	return b.Build()
}

// Subgraph returns the induced subgraph on keep (a set of node IDs), along
// with the mapping from new IDs to original IDs. Nodes are renumbered
// densely in increasing original-ID order.
//
// When the kept set is a substantial fraction of the graph (the common case:
// extracting the largest connected component) the renumbering uses a dense
// array instead of a map, turning the per-edge lookup on the projection hot
// loop into a single indexed load.
func (g *Graph) Subgraph(keep []NodeID) (*Graph, []NodeID) {
	uniq := slices.Clone(keep)
	slices.Sort(uniq)
	uniq = slices.Compact(uniq)
	n := g.NumNodes()
	b := NewBuilder(len(uniq), 0)
	if 8*len(uniq) >= n {
		// Dense renumbering: -1 marks dropped nodes.
		remap := make([]int64, n)
		for i := range remap {
			remap[i] = -1
		}
		for i, orig := range uniq {
			remap[orig] = int64(i)
		}
		for _, orig := range uniq {
			nu := NodeID(remap[orig])
			ts, ws := g.Neighbors(orig)
			for i, v := range ts {
				if nv := remap[v]; nv >= 0 && nu < NodeID(nv) {
					b.AddEdge(nu, NodeID(nv), ws[i])
				}
			}
		}
		return b.Build(), uniq
	}
	remap := make(map[NodeID]NodeID, len(uniq))
	for i, orig := range uniq {
		remap[orig] = NodeID(i)
	}
	for _, orig := range uniq {
		nu := remap[orig]
		ts, ws := g.Neighbors(orig)
		for i, v := range ts {
			nv, ok := remap[v]
			if ok && nu < nv {
				b.AddEdge(nu, nv, ws[i])
			}
		}
	}
	return b.Build(), uniq
}
