package main

import (
	"context"
	"testing"

	"graphdiam/internal/bsp"
	"graphdiam/internal/bsp/transport"
	"graphdiam/internal/core"
	"graphdiam/internal/exp"
	"graphdiam/internal/graph"
	"graphdiam/internal/sssp"
)

type snap struct{ rounds, messages, updates int64 }

// goldenSnapshots are the bsp.Snapshot values (rounds, messages, updates)
// of the seed algorithms on the ScaleTest benchmark graphs, captured from
// the tree BEFORE the PR-3 hot-path overhaul (persistent pool, O(1)
// routing, coalesced mailboxes, cached stats). The overhaul must keep the
// paper's platform-independent accounting byte-identical per worker count —
// note the updates counter legitimately varies ACROSS worker counts (its
// value depends on message arrival order, fixed per P), which is exactly
// why each (graph, algorithm, workers) cell is pinned separately.
var goldenSnapshots = []struct {
	graph   string
	algo    string
	workers int
	want    snap
}{
	{"roads-big", "cluster", 1, snap{43, 6297, 2762}},
	{"roads-big", "cluster2", 1, snap{119, 13780, 5816}},
	{"roads-big", "unweighted", 1, snap{31, 5461, 2306}},
	{"roads-big", "deltastep", 1, snap{185, 7276, 2540}},
	{"roads-big", "cluster", 4, snap{43, 6297, 2762}},
	{"roads-big", "cluster2", 4, snap{119, 13780, 5818}},
	{"roads-big", "unweighted", 4, snap{31, 5461, 2306}},
	{"roads-big", "deltastep", 4, snap{185, 7276, 2547}},
	{"roads-big", "cluster", 8, snap{43, 6297, 2762}},
	{"roads-big", "cluster2", 8, snap{119, 13780, 5831}},
	{"roads-big", "unweighted", 8, snap{31, 5461, 2306}},
	{"roads-big", "deltastep", 8, snap{185, 7276, 2553}},
	{"roads-small", "cluster", 1, snap{33, 1694, 652}},
	{"roads-small", "cluster2", 1, snap{77, 3393, 1353}},
	{"roads-small", "unweighted", 1, snap{21, 1184, 569}},
	{"roads-small", "deltastep", 1, snap{86, 1765, 626}},
	{"roads-small", "cluster", 4, snap{33, 1694, 652}},
	{"roads-small", "cluster2", 4, snap{77, 3393, 1352}},
	{"roads-small", "unweighted", 4, snap{21, 1184, 569}},
	{"roads-small", "deltastep", 4, snap{86, 1765, 630}},
	{"roads-small", "cluster", 8, snap{33, 1694, 653}},
	{"roads-small", "cluster2", 8, snap{77, 3393, 1353}},
	{"roads-small", "unweighted", 8, snap{21, 1184, 571}},
	{"roads-small", "deltastep", 8, snap{86, 1765, 640}},
	{"mesh", "cluster", 1, snap{35, 2973, 1276}},
	{"mesh", "cluster2", 1, snap{90, 11363, 4251}},
	{"mesh", "unweighted", 1, snap{24, 2509, 1029}},
	{"mesh", "deltastep", 1, snap{112, 4091, 1283}},
	{"mesh", "cluster", 4, snap{35, 2973, 1276}},
	{"mesh", "cluster2", 4, snap{90, 11363, 4246}},
	{"mesh", "unweighted", 4, snap{24, 2509, 1029}},
	{"mesh", "deltastep", 4, snap{112, 4091, 1285}},
	{"mesh", "cluster", 8, snap{35, 2973, 1276}},
	{"mesh", "cluster2", 8, snap{90, 11363, 4242}},
	{"mesh", "unweighted", 8, snap{24, 2509, 1029}},
	{"mesh", "deltastep", 8, snap{112, 4091, 1291}},
}

// TestGoldenMetricSnapshots pins the paper-facing cost accounting to the
// pre-overhaul values: any change to rounds, logical messages, or updates
// on the seed graphs is a reproduction regression, not an optimisation.
func TestGoldenMetricSnapshots(t *testing.T) {
	graphs := map[string]*graph.Graph{}
	for _, ng := range exp.BenchmarkGraphs(exp.ScaleTest, 12345)[:3] {
		graphs[ng.Name] = ng.G
	}
	for _, tc := range goldenSnapshots {
		g := graphs[tc.graph]
		if g == nil {
			t.Fatalf("unknown golden graph %q", tc.graph)
		}
		e := bsp.New(tc.workers)
		var got snap
		switch tc.algo {
		case "cluster":
			cl, err := core.Cluster(context.Background(), g, core.Options{Tau: 16, Seed: 42, Engine: e})
			if err != nil {
				t.Fatal(err)
			}
			got = snap{cl.Metrics.Rounds, cl.Metrics.Messages, cl.Metrics.Updates}
		case "cluster2":
			c2, err := core.Cluster2(context.Background(), g, core.Options{Tau: 16, Seed: 42, Engine: e})
			if err != nil {
				t.Fatal(err)
			}
			got = snap{c2.Metrics.Rounds, c2.Metrics.Messages, c2.Metrics.Updates}
		case "unweighted":
			cl, err := core.ClusterUnweighted(context.Background(), g, core.Options{Tau: 16, Seed: 42, Engine: e})
			if err != nil {
				t.Fatal(err)
			}
			got = snap{cl.Metrics.Rounds, cl.Metrics.Messages, cl.Metrics.Updates}
		case "deltastep":
			src := graph.NodeID(g.NumNodes() / 2)
			ds, err := sssp.DeltaStepping(context.Background(), g, src, sssp.SuggestDelta(g), e)
			if err != nil {
				t.Fatal(err)
			}
			got = snap{ds.Rounds, ds.Relaxations, ds.Updates}
		default:
			t.Fatalf("unknown algo %q", tc.algo)
		}
		e.Close()
		if got != tc.want {
			t.Errorf("%s/%s workers=%d: snapshot %+v, want %+v (pre-PR golden)",
				tc.graph, tc.algo, tc.workers, got, tc.want)
		}
	}
}

// TestGoldenMetricSnapshotsDistributed re-runs every golden cell with the
// workers split across two simulated-network daemons. The pinned values are
// the SAME pre-PR-3 goldens: distributing the engine must not perturb the
// paper's accounting by even one message. Cells with workers < 2 cannot be
// split and are covered by the single-process test above.
func TestGoldenMetricSnapshotsDistributed(t *testing.T) {
	graphs := map[string]*graph.Graph{}
	for _, ng := range exp.BenchmarkGraphs(exp.ScaleTest, 12345)[:3] {
		graphs[ng.Name] = ng.G
	}
	const peers = 2
	for _, tc := range goldenSnapshots {
		if tc.workers < peers {
			continue
		}
		g := graphs[tc.graph]
		if g == nil {
			t.Fatalf("unknown golden graph %q", tc.graph)
		}
		_, trs := simFleet(peers, transport.FaultPlan{})
		outs, errs := runFleet(t, g, tc.algo, tc.workers, trs)
		for r := range outs {
			if errs[r] != nil {
				t.Fatalf("%s/%s workers=%d peer %d: %v", tc.graph, tc.algo, tc.workers, r, errs[r])
			}
			if outs[r].snap != tc.want {
				t.Errorf("%s/%s workers=%d peer %d: snapshot %+v, want %+v (pre-PR golden)",
					tc.graph, tc.algo, tc.workers, r, outs[r].snap, tc.want)
			}
		}
	}
}
