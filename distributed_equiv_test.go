package main

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"graphdiam/internal/bsp"
	"graphdiam/internal/bsp/transport"
	"graphdiam/internal/core"
	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
	"graphdiam/internal/sssp"
)

// equivGraphs builds the transport-equivalence instances: one of each weight
// regime the paper's benchmarks cover (road-network, power-law RMat, bimodal
// mesh). Deterministic — every call yields bit-identical graphs.
func equivGraphs() []struct {
	name string
	g    *graph.Graph
} {
	road := gen.RoadNetwork(gen.DefaultRoadNetworkOptions(24), rng.New(7))
	rmat := gen.UniformWeights(gen.RMatDefault(8, rng.New(11)), rng.New(12))
	bimodal := gen.BimodalWeights(gen.Mesh(20), 1, 40, 0.12, rng.New(13))
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"road", road},
		{"rmat", rmat},
		{"bimodal", bimodal},
	}
}

var equivAlgos = []string{"cluster", "cluster2", "unweighted", "deltastep"}

// algoRun is one algorithm execution's observable outcome: the paper's
// platform-independent accounting plus a digest of the full result arrays.
// Bit-identity across transports means equal algoRuns.
type algoRun struct {
	snap snap
	fp   string
}

// runAlgo executes algo on g with the given engine and returns the outcome.
// The engine may be single-process or distributed; options are identical
// either way, which is the whole point.
func runAlgo(g *graph.Graph, algo string, e *bsp.Engine) (algoRun, error) {
	ctx := context.Background()
	opts := core.Options{Tau: 16, Seed: 42, Engine: e}
	h := sha256.New()
	put64 := func(x uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], x)
		h.Write(b[:])
	}
	var s snap
	switch algo {
	case "cluster", "unweighted":
		run := core.Cluster
		if algo == "unweighted" {
			run = core.ClusterUnweighted
		}
		cl, err := run(ctx, g, opts)
		if err != nil {
			return algoRun{}, err
		}
		s = snap{cl.Metrics.Rounds, cl.Metrics.Messages, cl.Metrics.Updates}
		for u := range cl.Center {
			put64(uint64(uint32(cl.Center[u])))
			put64(math.Float64bits(cl.Dist[u]))
		}
		put64(math.Float64bits(cl.Radius))
		put64(uint64(len(cl.Centers)))
	case "cluster2":
		c2, err := core.Cluster2(ctx, g, opts)
		if err != nil {
			return algoRun{}, err
		}
		s = snap{c2.Metrics.Rounds, c2.Metrics.Messages, c2.Metrics.Updates}
		for u := range c2.Center {
			put64(uint64(uint32(c2.Center[u])))
			put64(math.Float64bits(c2.Dist[u]))
		}
		put64(math.Float64bits(c2.Radius))
		put64(math.Float64bits(c2.RCL))
	case "deltastep":
		src := graph.NodeID(g.NumNodes() / 2)
		ds, err := sssp.DeltaStepping(ctx, g, src, sssp.SuggestDelta(g), e)
		if err != nil {
			return algoRun{}, err
		}
		s = snap{ds.Rounds, ds.Relaxations, ds.Updates}
		for _, d := range ds.Dist {
			put64(math.Float64bits(d))
		}
	default:
		return algoRun{}, fmt.Errorf("unknown algo %q", algo)
	}
	return algoRun{snap: s, fp: hex.EncodeToString(h.Sum(nil))}, nil
}

// runFleet runs algo on every peer of the fleet concurrently, each peer
// driving its own distributed engine over its transport, and returns the
// per-peer outcomes and errors.
func runFleet(t *testing.T, g *graph.Graph, algo string, workers int, peers []transport.Transport) ([]algoRun, []error) {
	t.Helper()
	outs := make([]algoRun, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for r, tr := range peers {
		wg.Add(1)
		go func(r int, tr transport.Transport) {
			defer wg.Done()
			e, err := bsp.NewDistributed(workers, tr)
			if err != nil {
				errs[r] = err
				return
			}
			defer e.Close()
			outs[r], errs[r] = runAlgo(g, algo, e)
		}(r, tr)
	}
	wg.Wait()
	return outs, errs
}

// simFleet returns one simulated transport per peer over a fresh hub.
func simFleet(peers int, plan transport.FaultPlan) (*transport.SimNetwork, []transport.Transport) {
	net := transport.NewSimNetwork(peers, plan, 30*time.Second)
	trs := make([]transport.Transport, peers)
	for r := range trs {
		trs[r] = net.Peer(r)
	}
	return net, trs
}

// loopbackFleet builds the real HTTP transport over loopback httptest
// daemons: each peer gets its own Registry served at /v2/bsp/frames, and
// the transports POST frames to each other exactly as separate graphdiamd
// processes would. The returned cleanup closes the servers.
func loopbackFleet(t *testing.T, peers int) ([]transport.Transport, func()) {
	t.Helper()
	regs := make([]*transport.Registry, peers)
	srvs := make([]*httptest.Server, peers)
	urls := make([]string, peers)
	for r := 0; r < peers; r++ {
		reg := transport.NewRegistry()
		regs[r] = reg
		srvs[r] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			if req.URL.Path != "/v2/bsp/frames" {
				http.NotFound(w, req)
				return
			}
			q := req.URL.Query()
			step, err1 := strconv.ParseUint(q.Get("step"), 10, 64)
			from, err2 := strconv.Atoi(q.Get("from"))
			if err1 != nil || err2 != nil {
				http.Error(w, "bad frame params", http.StatusBadRequest)
				return
			}
			blob := make([]byte, 0, req.ContentLength)
			buf := make([]byte, 32*1024)
			for {
				n, err := req.Body.Read(buf)
				blob = append(blob, buf[:n]...)
				if err != nil {
					break
				}
			}
			if err := reg.Deliver(q.Get("run"), step, from, blob); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		}))
		urls[r] = srvs[r].URL
	}
	trs := make([]transport.Transport, peers)
	for r := 0; r < peers; r++ {
		tr, err := transport.NewHTTP(context.Background(), transport.HTTPConfig{
			RunID:          "equiv",
			Rank:           r,
			PeerURLs:       urls,
			Registry:       regs[r],
			BarrierTimeout: 30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		trs[r] = tr
	}
	return trs, func() {
		for _, tr := range trs {
			tr.Close()
		}
		for _, s := range srvs {
			s.Close()
		}
	}
}

// TestTransportEquivalenceSimulated is the tentpole's proof obligation: for
// every algorithm, graph, and worker count, the distributed run over the
// simulated network — at several peer counts — produces bit-identical
// rounds/messages/updates and bit-identical result arrays on every peer,
// all equal to the single-process run with the same total worker count.
func TestTransportEquivalenceSimulated(t *testing.T) {
	for _, tg := range equivGraphs() {
		for _, algo := range equivAlgos {
			for _, workers := range []int{1, 4, 8} {
				// Single-process reference.
				ref := func() algoRun {
					e := bsp.New(workers)
					defer e.Close()
					out, err := runAlgo(tg.g, algo, e)
					if err != nil {
						t.Fatalf("%s/%s P=%d single-process: %v", tg.name, algo, workers, err)
					}
					return out
				}()
				for _, peers := range []int{1, 2, 3} {
					if peers > workers {
						continue
					}
					name := fmt.Sprintf("%s/%s/P=%d/peers=%d", tg.name, algo, workers, peers)
					_, trs := simFleet(peers, transport.FaultPlan{})
					outs, errs := runFleet(t, tg.g, algo, workers, trs)
					for r := range outs {
						if errs[r] != nil {
							t.Fatalf("%s: peer %d failed: %v", name, r, errs[r])
						}
						if outs[r] != ref {
							t.Errorf("%s: peer %d diverged: %+v vs single-process %+v",
								name, r, outs[r].snap, ref.snap)
						}
					}
				}
			}
		}
	}
}

// TestTransportEquivalenceLoopbackHTTP repeats the equivalence check over
// the real HTTP transport on loopback — the same wire codec, frame
// endpoint, and barrier collection a multi-daemon deployment uses. One
// (graph, algo) per worker count keeps wall time in check; the simulated
// suite covers the full matrix.
func TestTransportEquivalenceLoopbackHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback HTTP fleet is not short")
	}
	tg := equivGraphs()[0]
	for _, algo := range equivAlgos {
		for _, workers := range []int{1, 4, 8} {
			peers := 2
			if peers > workers {
				peers = 1
			}
			name := fmt.Sprintf("%s/%s/P=%d/peers=%d", tg.name, algo, workers, peers)
			ref := func() algoRun {
				e := bsp.New(workers)
				defer e.Close()
				out, err := runAlgo(tg.g, algo, e)
				if err != nil {
					t.Fatalf("%s single-process: %v", name, err)
				}
				return out
			}()
			trs, cleanup := loopbackFleet(t, peers)
			outs, errs := runFleet(t, tg.g, algo, workers, trs)
			cleanup()
			for r := range outs {
				if errs[r] != nil {
					t.Fatalf("%s: peer %d failed: %v", name, r, errs[r])
				}
				if outs[r] != ref {
					t.Errorf("%s: peer %d diverged: %+v vs single-process %+v",
						name, r, outs[r].snap, ref.snap)
				}
			}
		}
	}
}
